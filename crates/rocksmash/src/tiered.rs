//! [`TieredDb`]: the user-facing RocksMash store.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm::batch::BatchOp;
use lsm::commit::shard_of;
use lsm::db::DbIterator;
use lsm::{Db, GroupCommitStats, GroupQueue, ReadOptions, Result, Snapshot, WriteBatch};
use mashcache::cache::PersistentBlockCache;
use mashcache::{BaselineCache, CacheConfig, MashCache, MemCacheStorage};
use parking_lot::{Mutex, RwLock};
use storage::{CloudStore, Env, ObjectStore};

use crate::config::{CacheKind, TieredConfig};
use crate::ewal::{delete_generation, list_generations, EWalWriter};
use crate::recovery::{recover_into, RecoveryReport};
use crate::router::TieredRouter;
use crate::stats::{SchemeReport, StatsSource, HEAT_TOP_N};

/// Delete every eWAL generation numbered at or below `floor`.
fn delete_generations_le(env: &Arc<dyn Env>, floor: u64) -> Result<()> {
    for generation in list_generations(env)? {
        if generation <= floor {
            delete_generation(env, generation)?;
        }
    }
    Ok(())
}

/// Shared eWAL write-path state.
///
/// Appends take the `writer` read lock, so writers on different partitions
/// run fully in parallel; generation rotation takes the write lock, which
/// both quiesces in-flight appends and guarantees that everything in the
/// retired generation has already been applied to the memtable shards.
struct EWalShared {
    writer: RwLock<EWalWriter>,
    /// One group-commit queue per partition: concurrent writers on the
    /// same partition batch into a single append pass + fsync.
    queues: Vec<GroupQueue>,
    /// Group-commit counters for the eWAL queues (the engine keeps its own
    /// instance for its WAL; reports sum both).
    stats: Arc<GroupCommitStats>,
    bytes_since_flush: AtomicU64,
    /// Log generations whose data sits in a sealed-but-unflushed memtable:
    /// `(flush ticket, generation)` pairs, truncated once the engine
    /// reports the ticket flushed. Ordered by ticket (seals are monotonic).
    pending_truncations: Mutex<Vec<(u64, u64)>>,
}

/// Partition routing: the shard hash of the batch's first key. A batch is
/// one log record, so it lands whole in one partition; replay order is
/// carried by the sequence stamp, so routing only affects load balance.
fn ewal_partition_of(batch: &WriteBatch, partitions: usize) -> usize {
    batch
        .iter()
        .next()
        .map(|op| match op {
            BatchOp::Put(k, _) => shard_of(k, partitions),
            BatchOp::Delete(k) => shard_of(k, partitions),
        })
        .unwrap_or(0)
}

/// Background metrics sampler: pushes one [`obs::MetricsSnapshot`] into
/// the time-series ring per [`TieredConfig::timeseries_sample_interval`],
/// advances the heat clock to wall time, and — when
/// [`TieredConfig::stats_dump_interval`] is set — periodically prints the
/// stats dump to stderr.
struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Advance the heat clock so `elapsed / half_life` decay ticks have
/// passed, then collect a full snapshot through the detached handles and
/// push it into the time-series ring.
fn sample_metrics_from(
    source: &StatsSource,
    opened: Instant,
    half_life: Duration,
) -> Result<obs::MetricsSnapshot> {
    let heat = source.observer().heat();
    let desired = (opened.elapsed().as_secs_f64() / half_life.as_secs_f64().max(1e-9)) as u64;
    let current = heat.tick();
    if desired > current {
        heat.advance_ticks(desired - current);
    }
    let snapshot = snapshot_from(source)?;
    source.timeseries().push(&snapshot);
    // Diagnose on every sample: the monitor publishes a journal event only
    // when a rule newly trips, so a quiet store stays quiet.
    source.check_health();
    Ok(snapshot)
}

/// Full metrics snapshot — latency histograms, scheme counters/gauges,
/// and the heat/residency attachment — collected entirely through
/// [`StatsSource`] handles. Nothing here takes an engine lock, so callers
/// (the sampler, the HTTP exporter) can serialize the result at leisure
/// without stalling writers.
fn snapshot_from(source: &StatsSource) -> Result<obs::MetricsSnapshot> {
    let report = SchemeReport::collect_from(source)?;
    let mut registry = obs::MetricsRegistry::new(Arc::clone(source.observer()));
    report.fold_into(&mut registry);
    Ok(registry.snapshot())
}

/// An LSM store spanning local and cloud storage.
///
/// All metadata (MANIFEST, CURRENT), the write-ahead log, and the hot upper
/// levels live on the local [`Env`]; deeper levels live on the
/// [`CloudStore`], read through the configured persistent cache.
pub struct TieredDb {
    db: Db,
    env: Arc<dyn Env>,
    cloud: CloudStore,
    router: Arc<TieredRouter>,
    config: TieredConfig,
    ewal: Option<EWalShared>,
    /// Report of the eWAL recovery performed at open, if any.
    recovery: Option<RecoveryReport>,
    /// Latency histograms + event journal shared by every layer of this
    /// store (engine, cloud store, persistent cache, eWAL). Disabled —
    /// one branch per hook — unless [`TieredConfig::observability`].
    observer: Arc<obs::Observer>,
    /// Detached handles onto everything the scheme report samples; cloned
    /// into the sampler thread and the HTTP exporter so neither borrows
    /// the store.
    stats_source: StatsSource,
    /// Ring of periodic metrics samples backing the windowed-rate queries.
    timeseries: Arc<obs::TimeSeries>,
    /// When this store was opened — the origin of the heat decay clock.
    opened_at: Instant,
    sampler: Option<Sampler>,
    /// The promotion pass, when [`TieredConfig::promotion`] is set. Also
    /// registered on the engine's worker pool; this handle serves
    /// [`TieredDb::run_promotion_pass`].
    promotion: Option<Arc<crate::promote::PromotionPass>>,
    /// The `/metrics` HTTP exporter, when [`TieredConfig::metrics_listen`]
    /// is set. Taken (and thereby shut down) on close.
    metrics_server: Mutex<Option<obs::MetricsServer>>,
}

impl TieredDb {
    /// Open a tiered store on `env` (local tier), creating it if absent.
    pub fn open(env: Arc<dyn Env>, config: TieredConfig) -> Result<TieredDb> {
        let cloud = CloudStore::new(config.cloud.clone());
        Self::open_with_cloud(env, cloud, config)
    }

    /// Open against an existing cloud store (shared across restarts in
    /// crash-recovery tests, or across schemes in cost experiments).
    pub fn open_with_cloud(
        env: Arc<dyn Env>,
        cloud: CloudStore,
        config: TieredConfig,
    ) -> Result<TieredDb> {
        let observer = if config.observability {
            Arc::new(
                obs::Observer::new()
                    .with_slow_op_threshold(config.slow_op_threshold)
                    .with_slow_background_threshold(config.slow_background_threshold)
                    .with_perf_sampling(config.perf_sample_every),
            )
        } else {
            Arc::new(obs::Observer::disabled())
        };
        cloud.attach_observer(Arc::clone(&observer));
        let mut recovered_mash: Option<Arc<MashCache>> = None;
        let cache: Option<Arc<dyn PersistentBlockCache>> = match (config.cache, config.cache_bytes)
        {
            (CacheKind::None, _) | (_, 0) => None,
            (CacheKind::Mash, bytes) => {
                // Blocks are cut at ~block_size plus prefix-compression
                // slack and the 5-byte trailer; a quarter of headroom
                // covers that without wasting half of every slot.
                let slot_size =
                    (config.options.block_size + config.options.block_size / 4 + 128) as u32;
                // Cap extent size so the cache always has enough extents to
                // spread over the working set of SSTables; a cache with a
                // handful of huge extents thrashes on allocation.
                let total_slots = (bytes / slot_size as u64).max(1) as u32;
                let slots_per_extent =
                    config.cache_slots_per_extent.clamp(2, (total_slots / 64).max(2));
                let cache_config = CacheConfig {
                    slot_size,
                    slots_per_extent,
                    admission: config.cache_admission,
                    verify_read_checksums: false,
                };
                let mash = match &config.cache_file {
                    // File-backed: the cache and its warmed working set
                    // survive restarts; metadata is rebuilt from slot
                    // headers (paper pillar 2's persistence).
                    Some(path) => {
                        let storage = Arc::new(
                            mashcache::FileCacheStorage::create(path, bytes)
                                .map_err(storage::StorageError::Io)?,
                        );
                        Arc::new(
                            MashCache::recover(storage, cache_config)
                                .map_err(storage::StorageError::Io)?,
                        )
                    }
                    None => {
                        let storage = Arc::new(MemCacheStorage::new(bytes as usize));
                        Arc::new(MashCache::new(storage, cache_config))
                    }
                };
                recovered_mash = Some(Arc::clone(&mash));
                Some(mash as Arc<dyn PersistentBlockCache>)
            }
            (CacheKind::Baseline, bytes) => {
                let storage = Arc::new(MemCacheStorage::new(bytes as usize));
                let slot_size =
                    (config.options.block_size + config.options.block_size / 4 + 128) as u32;
                Some(Arc::new(BaselineCache::new(storage, slot_size)))
            }
        };
        if let Some(mash) = &recovered_mash {
            mash.attach_observer(Arc::clone(&observer));
        }
        let router = Arc::new(TieredRouter::new(cloud.clone(), config.placement, cache));
        router.attach_observer(Arc::clone(&observer));
        if let Some(promotion) = &config.promotion {
            if !config.observability {
                return Err(lsm::Error::InvalidArgument(
                    "promotion requires observability: the pass plans against heat scores \
                     and the residency ledger"
                        .into(),
                ));
            }
            // Installed before the engine opens so recovery-time flushes
            // and compaction outputs already ask the heat-aware policy.
            router.set_policy(Arc::new(crate::placement::HeatAware {
                base: config.placement,
                local_budget_bytes: promotion.local_budget_bytes,
                min_score: promotion.min_score,
            }));
        }
        let mut engine_options = config.engine_options();
        engine_options.observer = Some(Arc::clone(&observer));
        let db = Db::open_with_router(
            Arc::clone(&env),
            engine_options,
            Arc::clone(&router) as Arc<dyn lsm::db::FileRouter>,
        )?;

        let (ewal, recovery) = if config.ewal {
            // Rebuild whatever the previous incarnation left behind. The
            // recovered memtables are ingested directly as L0 tables, so
            // the data is table-durable and the logs can be dropped.
            let report = recover_into(&env, &db, config.parallel_recovery)?;
            for generation in list_generations(&env)? {
                delete_generation(&env, generation)?;
            }
            let partitions = config.ewal_partitions.max(1);
            let writer = EWalWriter::create(&env, 1, partitions)?;
            let stats = Arc::new(GroupCommitStats::default());
            let queues = (0..partitions)
                .map(|_| {
                    GroupQueue::new(
                        config.options.group_commit_max_batches,
                        config.options.group_commit_max_bytes,
                        Arc::clone(&stats),
                    )
                })
                .collect();
            (
                Some(EWalShared {
                    writer: RwLock::new(writer),
                    queues,
                    stats,
                    bytes_since_flush: AtomicU64::new(0),
                    pending_truncations: Mutex::new(Vec::new()),
                }),
                Some(report),
            )
        } else {
            (None, None)
        };

        // Remove cloud objects orphaned by a crash between upload and
        // manifest commit. Uses the recovery-time live set and file-number
        // floor, never the current version — the engine's background
        // compactions are already running and may be uploading new tables.
        let live = db.recovered_live_files().clone();
        router.gc_cloud(&live, db.recovered_next_file_number())?;
        // Cloud objects shadowed by a local copy are stale duplicates left
        // by a tier migration: the local file is authoritative and no
        // reader exists yet, so they can be swept.
        for cloud_key in cloud.list("sst/")? {
            if let Some(number) = cloud_key
                .strip_prefix("sst/")
                .and_then(|k| k.strip_suffix(".sst"))
                .and_then(|k| k.parse::<u64>().ok())
            {
                if env.exists(&lsm::version::sst_name(number))? {
                    let _ = cloud.delete(&cloud_key);
                }
            }
        }
        // Cached blocks of tables that no longer exist are dead space.
        // (Blocks of tables created after recovery cannot be in a cache
        // that was recovered before them, so the recovery-time set is the
        // right filter here too.)
        if let Some(mash) = &recovered_mash {
            mash.retain_files(&live);
        }

        // Seed the residency ledger from the recovered version: residency
        // is otherwise only fed by flush/upload/migration events, and a
        // reopened store (every CLI invocation) would report empty tiers
        // and tier-less heat rankings until files happen to move.
        if observer.is_enabled() {
            let version = db.current_version();
            for files in version.levels.iter() {
                for meta in files {
                    let tier = if env.exists(&lsm::version::sst_name(meta.number))? {
                        obs::ResidencyTier::Local
                    } else {
                        obs::ResidencyTier::Cloud
                    };
                    observer.set_residency(meta.number, meta.file_size, tier);
                }
            }
        }

        let timeseries = Arc::new(obs::TimeSeries::new(config.timeseries_capacity));
        let opened_at = Instant::now();
        let stats_source = StatsSource {
            env: Arc::clone(&env),
            cloud: cloud.clone(),
            router: Arc::clone(&router),
            engine_stats: db.stats_handle(),
            prefetcher: db.prefetcher().cloned(),
            block_cache: db.block_cache().cloned(),
            engine_gc: Arc::clone(db.group_commit_stats()),
            ewal_gc: ewal.as_ref().map(|e| Arc::clone(&e.stats)),
            observer: Arc::clone(&observer),
            timeseries: Arc::clone(&timeseries),
            version: db.version_handle(),
            health: Arc::new(obs::HealthMonitor::new(obs::Doctor::new())),
        };

        // Background sampler: needed by both the stats dump and the
        // exporter's rate windows (an unfed ring answers no rate query).
        // It collects through the detached StatsSource handles — never a
        // borrow of the store, never an engine lock held across a print.
        let sampler = (config.stats_dump_interval.is_some() || config.metrics_listen.is_some())
            .then(|| {
                let stop = Arc::new(AtomicBool::new(false));
                let flag = Arc::clone(&stop);
                let source = stats_source.clone();
                let sample_interval =
                    config.timeseries_sample_interval.max(Duration::from_millis(10));
                let dump_interval = config.stats_dump_interval;
                let half_life = config.heat_half_life;
                let handle = std::thread::Builder::new()
                    .name("rocksmash-sampler".into())
                    .spawn(move || {
                        let mut since_dump = Duration::ZERO;
                        while !flag.load(Ordering::Relaxed) {
                            std::thread::park_timeout(sample_interval);
                            if flag.load(Ordering::Relaxed) {
                                break;
                            }
                            // Sampling failures (transient env errors) skip
                            // one sample rather than killing the thread.
                            let sampled = sample_metrics_from(&source, opened_at, half_life);
                            since_dump += sample_interval;
                            if let Some(dump) = dump_interval {
                                if since_dump >= dump {
                                    since_dump = Duration::ZERO;
                                    if let Ok(snapshot) = sampled {
                                        eprintln!("{}", snapshot.stats_string());
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn sampler thread");
                Sampler { stop, handle: Mutex::new(Some(handle)) }
            });

        let metrics_server = match &config.metrics_listen {
            Some(listen) => {
                let source = stats_source.clone();
                let handler: obs::http::Handler = Arc::new(move |path: &str| match path {
                    "/metrics" => {
                        let mut body = match snapshot_from(&source) {
                            Ok(snapshot) => snapshot.to_prometheus(),
                            Err(e) => {
                                return Some((
                                    "text/plain; charset=utf-8",
                                    format!("# collect error: {e}\n"),
                                ))
                            }
                        };
                        body.push_str(&source.timeseries().to_prometheus());
                        Some(("text/plain; version=0.0.4; charset=utf-8", body))
                    }
                    "/stats.json" => Some(match snapshot_from(&source) {
                        Ok(snapshot) => ("application/json", snapshot.to_json()),
                        Err(e) => (
                            "application/json",
                            format!("{{\"error\":\"{}\"}}", obs::json::escape(&e.to_string())),
                        ),
                    }),
                    "/heat.json" => {
                        let cache_backed =
                            source.router.cache().map(|c| c.data_bytes()).unwrap_or(0);
                        let heat = source.observer().heat().snapshot(HEAT_TOP_N, cache_backed);
                        Some(("application/json", heat.to_json()))
                    }
                    "/timeseries.json" => Some(("application/json", source.timeseries().to_json())),
                    "/health.json" => Some(("application/json", source.check_health().to_json())),
                    _ => None,
                });
                let server = obs::MetricsServer::start(listen, handler)
                    .map_err(storage::StorageError::Io)?;
                Some(server)
            }
            None => None,
        };

        // Schedule the promotion pass on the engine's worker pool (lowest
        // priority: never ahead of a flush or compaction). The job holds
        // only detached handles, so this creates no reference cycle.
        let promotion = config.promotion.as_ref().map(|p| {
            Arc::new(crate::promote::PromotionPass::new(
                Arc::clone(&env),
                Arc::clone(&router),
                Arc::clone(&observer),
                p.clone(),
            ))
        });
        if let (Some(pass), Some(p)) = (&promotion, &config.promotion) {
            db.set_external_job(p.interval, Arc::clone(pass) as Arc<dyn lsm::ExternalJob>);
        }

        Ok(TieredDb {
            db,
            env,
            cloud,
            router,
            config,
            ewal,
            recovery,
            observer,
            stats_source,
            timeseries,
            opened_at,
            sampler,
            promotion,
            metrics_server: Mutex::new(metrics_server),
        })
    }

    /// The eWAL recovery report from this open, when the eWAL is enabled.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Insert or overwrite one key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.write(batch)
    }

    /// Delete one key.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.write(batch)
    }

    /// Apply a batch atomically; durability comes from the eWAL (RocksMash
    /// mode) or the engine WAL (baseline modes).
    ///
    /// In eWAL mode the batch reserves a contiguous sequence range from
    /// the engine, is stamped, and rides its partition's group-commit
    /// queue: one leader appends every queued batch to the partition log,
    /// issues at most one fsync, and applies the group to the engine's
    /// memtable shards. The range is published to readers afterwards, so a
    /// batch becomes visible only once it is both durable and applied.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let _perf = self.observer.perf_guard(false);
        let _span = self.observer.span_if_perf("write");
        match &self.ewal {
            Some(ewal) => {
                // The engine WAL is bypassed here, so the store owns the
                // foreground write sample the engine would have recorded.
                let timer = self.observer.start();
                let result = self.write_ewal(ewal, batch);
                self.observer.finish(obs::Op::Write, timer);
                result
            }
            None => self.db.write(batch),
        }
    }

    /// The eWAL-mode write path; see [`TieredDb::write`].
    fn write_ewal(&self, ewal: &EWalShared, mut batch: WriteBatch) -> Result<()> {
        let count = batch.count() as u64;
        let bytes = batch.byte_size() as u64;
        let start = self.db.reserve_sequences(count);
        batch.set_sequence(start);
        let partition = ewal_partition_of(&batch, ewal.queues.len());
        let sync_writes = self.config.options.sync_writes;
        // The read lock spans append + apply, so rotation (write lock) can
        // only run when every logged batch is also in a memtable — the
        // seal it triggers captures them all.
        let writer = ewal.writer.read();
        let result = ewal.queues[partition].submit(batch, |group| {
            let timer = self.observer.start();
            let stage = obs::perf::start_stage();
            for slot in group {
                writer.append_to(partition, slot.batch())?;
            }
            obs::perf::finish_stage(stage, |c, ns| c.wal_append_ns += ns);
            self.observer.finish(obs::Op::EwalAppend, timer);
            if sync_writes {
                let timer = self.observer.start();
                let stage = obs::perf::start_stage();
                writer.sync_partition(partition)?;
                obs::perf::finish_stage(stage, |c, ns| c.wal_sync_ns += ns);
                self.observer.finish(obs::Op::EwalSync, timer);
            }
            for slot in group {
                self.db.apply_stamped(slot.batch())?;
            }
            Ok(())
        });
        drop(writer);
        // Publish even on failure: the range holds no visible data then,
        // but leaving it unpublished would wedge the watermark for every
        // later write.
        self.db.publish_sequences(start, start + count - 1);
        result?;
        ewal.bytes_since_flush.fetch_add(bytes, Ordering::Relaxed);
        if ewal.bytes_since_flush.load(Ordering::Relaxed)
            >= self.config.options.write_buffer_size as u64
        {
            // Rotate the log and seal the memtable without waiting for the
            // flush: the background pool drains the queue while writers
            // keep going. The retired generation is truncated once the
            // engine reports the seal flushed.
            self.rotate_ewal(ewal)?;
        }
        self.drain_truncations(ewal)
    }

    /// Swap in a fresh log generation, then seal the memtables so the
    /// retired generation can be truncated once their flush lands.
    fn rotate_ewal(&self, ewal: &EWalShared) -> Result<()> {
        let old = {
            let mut writer = ewal.writer.write();
            // Another writer may have rotated while this one waited for
            // the write lock; don't rotate again for the same spill.
            if ewal.bytes_since_flush.load(Ordering::Relaxed)
                < self.config.options.write_buffer_size as u64
            {
                return Ok(());
            }
            let old = writer.generation();
            let fresh = EWalWriter::create(&self.env, old + 1, self.config.ewal_partitions.max(1))?;
            let retired = std::mem::replace(&mut *writer, fresh);
            retired.finish()?;
            ewal.bytes_since_flush.store(0, Ordering::Relaxed);
            old
        };
        if let Some(ticket) = self.db.seal_memtable()? {
            ewal.pending_truncations.lock().push((ticket, old));
        } else {
            // Nothing sealed and the queue is empty: the data is already
            // table-durable.
            delete_generations_le(&self.env, old)?;
        }
        Ok(())
    }

    /// Truncate log generations whose sealed memtables have since been
    /// flushed.
    fn drain_truncations(&self, ewal: &EWalShared) -> Result<()> {
        let mut cleared: Option<u64> = None;
        {
            let mut pending = ewal.pending_truncations.lock();
            while let Some(&(ticket, generation)) = pending.first() {
                if !self.db.flush_caught_up(ticket)? {
                    break;
                }
                cleared = Some(generation);
                pending.remove(0);
            }
        }
        match cleared {
            Some(generation) => delete_generations_le(&self.env, generation),
            None => Ok(()),
        }
    }

    /// Group-commit counters of the eWAL partition queues, when the eWAL
    /// is enabled. The engine's own WAL counters live at
    /// [`lsm::Db::group_commit_stats`]; scheme reports sum the two.
    pub fn ewal_commit_stats(&self) -> Option<&Arc<GroupCommitStats>> {
        self.ewal.as_ref().map(|e| &e.stats)
    }

    /// Read the newest visible value of `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get(key)
    }

    /// Read `key` with per-read tuning: [`ReadOptions::perf_context`]
    /// captures a stage breakdown of this single call into the observer.
    pub fn get_with(&self, read_opts: ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get_with(read_opts, key)
    }

    /// Read `key` as of `snapshot`.
    pub fn get_at(&self, key: &[u8], snapshot: &Snapshot) -> Result<Option<Vec<u8>>> {
        self.db.get_at(key, snapshot)
    }

    /// Point-read several keys at one consistent read point; large batches
    /// fan out across the engine's read pool so cloud latencies overlap.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>> {
        self.db.multi_get(keys)
    }

    /// [`TieredDb::multi_get`] with per-read tuning; perf-context capture
    /// spans the whole fan-out (worker contexts merge into the caller's).
    pub fn multi_get_with(
        &self,
        read_opts: ReadOptions,
        keys: &[&[u8]],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        self.db.multi_get_with(read_opts, keys)
    }

    /// Run `f` with a perf context active on the calling thread and return
    /// its result together with the captured stage breakdown. Every
    /// operation `f` performs on this store (reads, writes, scans)
    /// accumulates into one [`obs::PerfContext`], which is also folded
    /// into the observer's totals. Nested calls keep capturing into the
    /// outermost context; the inner call then returns an empty breakdown.
    pub fn with_perf_context<T>(&self, f: impl FnOnce(&TieredDb) -> T) -> (T, obs::PerfContext) {
        let began = obs::perf::begin();
        let out = f(self);
        let ctx = if began {
            let ctx = obs::perf::end();
            self.observer.absorb_perf(&ctx);
            ctx
        } else {
            obs::PerfContext::default()
        };
        (out, ctx)
    }

    /// Take a consistent snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.db.snapshot()
    }

    /// Iterator over the live keyspace.
    pub fn iter(&self) -> Result<DbIterator> {
        self.db.iter()
    }

    /// Iterator with explicit per-read tuning.
    pub fn iter_with(&self, read_opts: ReadOptions) -> Result<DbIterator> {
        self.db.iter_with(read_opts)
    }

    /// Scan up to `limit` pairs starting at `from`, with the configured
    /// readahead ([`TieredConfig::readahead_blocks`]).
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_with(from, limit, ReadOptions::with_readahead(self.config.readahead_blocks))
    }

    /// Scan up to `limit` pairs in `[from, to)`, with the configured
    /// readahead. The exclusive upper bound is pushed down into the
    /// iterator stack, so tables past `to` are never opened and readahead
    /// never schedules a cloud block beyond the bound.
    pub fn scan_bounded(
        &self,
        from: &[u8],
        to: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let read_opts =
            ReadOptions::with_readahead(self.config.readahead_blocks).with_upper_bound(to);
        self.scan_with(from, limit, read_opts)
    }

    /// Scan with explicit per-read tuning, overriding the configured
    /// readahead.
    pub fn scan_with(
        &self,
        from: &[u8],
        limit: usize,
        read_opts: ReadOptions,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut it = self.db.iter_with(read_opts)?;
        it.seek(from)?;
        it.collect_forward(limit)
    }

    /// Persist the memtable to tables; with the eWAL enabled this also
    /// rotates and truncates the log generations.
    pub fn flush(&self) -> Result<()> {
        match &self.ewal {
            Some(ewal) => {
                let old_generation = {
                    let mut writer = ewal.writer.write();
                    let old = writer.generation();
                    let fresh =
                        EWalWriter::create(&self.env, old + 1, self.config.ewal_partitions.max(1))?;
                    let retired = std::mem::replace(&mut *writer, fresh);
                    retired.finish()?;
                    ewal.bytes_since_flush.store(0, Ordering::Relaxed);
                    old
                };
                self.db.flush()?;
                // The whole flush queue drained: everything in generations
                // ≤ old_generation is table-durable, including any pending
                // async seals (their generations are ≤ old_generation).
                ewal.pending_truncations.lock().retain(|&(_, g)| g > old_generation);
                delete_generations_le(&self.env, old_generation)
            }
            None => self.db.flush(),
        }
    }

    /// Block until background compactions drain.
    pub fn wait_for_compactions(&self) -> Result<()> {
        self.db.wait_for_compactions()
    }

    /// The underlying engine (benchmark/introspection use).
    pub fn engine(&self) -> &Db {
        &self.db
    }

    /// The simulated cloud store backing the cold tier.
    pub fn cloud(&self) -> &CloudStore {
        &self.cloud
    }

    /// The tier router (placement + cache wiring).
    pub fn router(&self) -> &Arc<TieredRouter> {
        &self.router
    }

    /// The local-tier environment this store lives on.
    pub fn local_env(&self) -> &Arc<dyn Env> {
        &self.env
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &TieredConfig {
        &self.config
    }

    /// Bytes currently resident on the local tier (tables + logs +
    /// metadata).
    pub fn local_bytes(&self) -> Result<u64> {
        Ok(self.env.total_bytes()?)
    }

    /// Bytes currently resident on the cloud tier.
    pub fn cloud_bytes(&self) -> Result<u64> {
        Ok(self.cloud.total_bytes()?)
    }

    /// Aggregate scheme report: engine, tiers, cache, cost.
    pub fn report(&self) -> Result<SchemeReport> {
        SchemeReport::collect(self)
    }

    /// Run one tier-promotion pass synchronously on the caller's thread
    /// and return what moved. The same pass also runs periodically on the
    /// engine's background pool at [`crate::PromotionConfig::interval`].
    /// Errors unless [`TieredConfig::promotion`] is configured.
    pub fn run_promotion_pass(&self) -> Result<crate::promote::PromotionReport> {
        match &self.promotion {
            Some(pass) => pass.run_pass(&self.db.bg_view()),
            None => Err(lsm::Error::InvalidArgument("promotion is not configured".into())),
        }
    }

    /// Detached stats-collection handles — the sampler/exporter's view of
    /// this store. Cheap to clone; collecting through it never borrows
    /// the store or holds an engine lock.
    pub fn stats_source(&self) -> StatsSource {
        self.stats_source.clone()
    }

    /// The metrics time-series ring fed by the background sampler (and by
    /// explicit [`TieredDb::sample_metrics`] calls).
    pub fn timeseries(&self) -> &Arc<obs::TimeSeries> {
        &self.timeseries
    }

    /// Advance the heat decay clock to wall time, push one metrics sample
    /// into the time-series ring, and return the snapshot — exactly what
    /// the background sampler does each interval. For callers driving
    /// their own cadence (the CLI's `watch` loop).
    pub fn sample_metrics(&self) -> Result<obs::MetricsSnapshot> {
        sample_metrics_from(&self.stats_source, self.opened_at, self.config.heat_half_life)
    }

    /// Address the HTTP metrics exporter is listening on, when
    /// [`TieredConfig::metrics_listen`] enabled it. With port 0 in the
    /// config this reveals the ephemeral port actually bound.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_server.lock().as_ref().map(|s| s.addr())
    }

    /// The store-wide latency/event observer (disabled unless
    /// [`TieredConfig::observability`]).
    pub fn observer(&self) -> &Arc<obs::Observer> {
        &self.observer
    }

    /// Metrics registry combining the observer's latency histograms and
    /// event journal with the [`SchemeReport`] folded in as counters and
    /// gauges. Snapshot it for the text/JSON/Prometheus exports.
    pub fn metrics(&self) -> Result<obs::MetricsRegistry> {
        let mut registry = obs::MetricsRegistry::new(Arc::clone(&self.observer));
        self.report()?.fold_into(&mut registry);
        Ok(registry)
    }

    /// RocksDB-style human-readable statistics dump.
    pub fn stats_string(&self) -> Result<String> {
        Ok(self.metrics()?.snapshot().stats_string())
    }

    /// The per-level amplification table (shape, byte flows, derived
    /// amplification factors, compaction debt), with the per-tier byte
    /// split joined from the residency ledger.
    pub fn level_table(&self) -> obs::LevelTable {
        self.stats_source.level_table()
    }

    /// Run the health doctor now: evaluate every rule over the trailing
    /// metrics window and the current level table. Journal events are
    /// published for newly-tripped rules only.
    pub fn health_report(&self) -> obs::HealthReport {
        self.stats_source.check_health()
    }

    /// Write a one-command debug bundle into `dir` (created if absent):
    /// the stats dump and JSON snapshot, the full scheme report, recent
    /// events, heat/residency, the metrics time-series ring, the health
    /// report, the level table, and a manifest-style listing of every
    /// live table with its tier. Returns the file names written.
    ///
    /// A fresh metrics sample is pushed first so the bundle's time-series
    /// and health report include the present moment.
    pub fn dump_debug_bundle(&self, dir: &std::path::Path) -> Result<Vec<String>> {
        use std::fmt::Write as _;
        std::fs::create_dir_all(dir).map_err(storage::StorageError::Io)?;
        let mut written: Vec<String> = Vec::new();
        let mut emit = |name: &str, contents: &str| -> Result<()> {
            std::fs::write(dir.join(name), contents).map_err(storage::StorageError::Io)?;
            written.push(name.to_string());
            Ok(())
        };
        let snapshot = self.sample_metrics()?;
        emit("stats.txt", &snapshot.stats_string())?;
        emit("stats.json", &snapshot.to_json())?;
        emit("report.json", &self.report()?.to_json())?;
        emit("events.jsonl", &self.observer.journal().to_json_lines())?;
        let cache_backed = self.router.cache().map(|c| c.data_bytes()).unwrap_or(0);
        emit("heat.json", &self.observer.heat().snapshot(HEAT_TOP_N, cache_backed).to_json())?;
        emit("timeseries.json", &self.timeseries.to_json())?;
        emit("health.json", &self.stats_source.check_health().to_json())?;
        let table = self.stats_source.level_table();
        emit("level_table.txt", &table.render())?;
        // Manifest-style listing: every live table, its level, size, and
        // tier — read through the published version, never an engine lock.
        let mut listing = String::from("level  file          bytes  tier\n");
        {
            let version = Arc::clone(&self.stats_source.version.read());
            let residency = self.observer.heat().residency();
            for (level, files) in version.levels.iter().enumerate() {
                for meta in files {
                    let tier = match residency.tier_of(meta.number) {
                        Some(obs::ResidencyTier::Local) => "local",
                        Some(obs::ResidencyTier::Cloud) => "cloud",
                        None => "-",
                    };
                    let _ = writeln!(
                        listing,
                        "L{level:<5} {:>6} {:>14} {tier}",
                        meta.number, meta.file_size
                    );
                }
            }
        }
        emit("manifest.txt", &listing)?;
        let created = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let files: Vec<String> = written.iter().map(|f| format!("\"{f}\"")).collect();
        let meta = format!(
            "{{\"created_unix_secs\":{created},\"files\":[{}],\"compaction_debt_bytes\":{}}}",
            files.join(","),
            table.compaction_debt_bytes,
        );
        std::fs::write(dir.join("bundle.json"), meta).map_err(storage::StorageError::Io)?;
        written.push("bundle.json".to_string());
        Ok(written)
    }

    /// Shut down background work and sync logs.
    pub fn close(&self) -> Result<()> {
        // Dropping the server stops the accept loop and joins its thread,
        // so no scrape can race the engine teardown below.
        drop(self.metrics_server.lock().take());
        if let Some(sampler) = &self.sampler {
            sampler.stop.store(true, Ordering::Relaxed);
            if let Some(handle) = sampler.handle.lock().take() {
                handle.thread().unpark();
                let _ = handle.join();
            }
        }
        if let Some(ewal) = &self.ewal {
            ewal.writer.read().sync()?;
        }
        self.db.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm::Options;
    use storage::MemEnv;

    fn key(i: usize) -> Vec<u8> {
        format!("key{i:06}").into_bytes()
    }

    fn tiny_config() -> TieredConfig {
        TieredConfig {
            options: Options {
                write_buffer_size: 16 << 10,
                target_file_size: 16 << 10,
                max_bytes_for_level_base: 32 << 10,
                l0_compaction_trigger: 2,
                ..Options::small_for_tests()
            },
            cache_admission: false,
            ..TieredConfig::small_for_tests()
        }
    }

    fn fill(db: &TieredDb, n: usize, tag: &str) {
        for i in 0..n {
            db.put(&key(i), format!("value{i:06}-{tag}-{}", "x".repeat(64)).as_bytes()).unwrap();
        }
    }

    #[test]
    fn basic_read_write_through_tiers() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = TieredDb::open(env, tiny_config()).unwrap();
        fill(&db, 1000, "a");
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        // Data should have reached the cloud tier.
        assert!(db.cloud_bytes().unwrap() > 0, "cold levels must be cloud-resident");
        for i in (0..1000).step_by(37) {
            let got = db.get(&key(i)).unwrap().expect("present");
            assert!(got.starts_with(format!("value{i:06}-a").as_bytes()));
        }
    }

    #[test]
    fn scan_spans_both_tiers() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = TieredDb::open(env, tiny_config()).unwrap();
        fill(&db, 500, "s");
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        let rows = db.scan(&key(100), 50).unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[0].0, key(100));
        assert_eq!(rows[49].0, key(149));
    }

    #[test]
    fn ewal_crash_recovery_restores_unflushed_writes() {
        let env = Arc::new(MemEnv::new());
        let cloud = CloudStore::instant();
        {
            let db = TieredDb::open_with_cloud(
                env.clone() as Arc<dyn Env>,
                cloud.clone(),
                tiny_config(),
            )
            .unwrap();
            fill(&db, 200, "pre");
            db.flush().unwrap();
            // These stay only in the eWAL + memtable.
            for i in 200..260 {
                db.put(&key(i), b"unflushed").unwrap();
            }
            // Simulate crash: drop without close/flush. MemEnv keeps the
            // "disk" contents alive through the shared Arc.
            db.engine().close().unwrap();
        }
        let db = TieredDb::open_with_cloud(env as Arc<dyn Env>, cloud, tiny_config()).unwrap();
        let report = db.recovery_report().expect("ewal recovery ran");
        assert!(report.ops() >= 60, "unflushed tail must be replayed, got {}", report.ops());
        for i in 200..260 {
            assert_eq!(db.get(&key(i)).unwrap(), Some(b"unflushed".to_vec()), "key {i}");
        }
        for i in (0..200).step_by(17) {
            assert!(db.get(&key(i)).unwrap().is_some(), "flushed key {i}");
        }
    }

    #[test]
    fn ewal_generations_are_truncated_on_flush() {
        let env = Arc::new(MemEnv::new());
        let db = TieredDb::open(env.clone() as Arc<dyn Env>, tiny_config()).unwrap();
        fill(&db, 100, "g");
        db.flush().unwrap();
        let gens = list_generations(&(env.clone() as Arc<dyn Env>)).unwrap();
        // Only the fresh generation survives.
        assert_eq!(gens.len(), 1);
    }

    #[test]
    fn cache_absorbs_repeated_cloud_reads() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = TieredDb::open(env, tiny_config()).unwrap();
        fill(&db, 2000, "c");
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        // Read the same keys twice; second pass should mostly hit cache.
        for i in (0..2000).step_by(10) {
            let _ = db.get(&key(i)).unwrap();
        }
        let cloud_reads_warm = db.cloud().stats().snapshot().reads;
        for i in (0..2000).step_by(10) {
            let _ = db.get(&key(i)).unwrap();
        }
        let second_pass = db.cloud().stats().snapshot().reads - cloud_reads_warm;
        assert!(
            second_pass < cloud_reads_warm / 2,
            "second pass cloud reads {second_pass} vs first {cloud_reads_warm}"
        );
    }

    #[test]
    fn report_collects_all_dimensions() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = TieredDb::open(env, tiny_config()).unwrap();
        fill(&db, 500, "r");
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        for i in (0..500).step_by(5) {
            let _ = db.get(&key(i)).unwrap();
        }
        let report = db.report().unwrap();
        assert!(report.engine_flushes >= 1);
        assert!(report.local_bytes > 0);
        assert!(report.cloud_bytes > 0);
        assert!(report.cost.monthly_total() > 0.0);
        let cache = report.cache.expect("mash cache present");
        assert!(cache.hits + cache.misses > 0);
    }

    #[test]
    fn file_backed_cache_survives_restart_warm() {
        let tmp = std::env::temp_dir().join(format!(
            "rocksmash-cachefile-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(&tmp).unwrap();
        let cache_path = tmp.join("cache.dat");
        let env = Arc::new(MemEnv::new());
        let cloud = CloudStore::instant();
        let config = TieredConfig { cache_file: Some(cache_path), ..tiny_config() };
        {
            let db = TieredDb::open_with_cloud(
                env.clone() as Arc<dyn Env>,
                cloud.clone(),
                config.clone(),
            )
            .unwrap();
            fill(&db, 1500, "w");
            db.flush().unwrap();
            db.wait_for_compactions().unwrap();
            // Warm the cache.
            for i in (0..1500).step_by(3) {
                let _ = db.get(&key(i)).unwrap();
            }
            db.close().unwrap();
        }
        // Restart: the file-backed cache must come back warm, so reads
        // need far fewer cloud requests than the cold warm-up did.
        let db = TieredDb::open_with_cloud(env as Arc<dyn Env>, cloud, config).unwrap();
        let cold_reads = db.cloud().stats().snapshot().reads;
        for i in (0..1500).step_by(3) {
            assert!(db.get(&key(i)).unwrap().is_some(), "key {i}");
        }
        let warm_pass_reads = db.cloud().stats().snapshot().reads - cold_reads;
        let report = db.report().unwrap();
        let cache = report.cache.expect("cache");
        assert!(cache.hits > 0, "recovered cache must serve hits");
        assert!(
            warm_pass_reads < cache.hits,
            "cloud reads ({warm_pass_reads}) should be fewer than cache hits ({})",
            cache.hits
        );
        db.close().unwrap();
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn deletes_propagate_through_tiers() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = TieredDb::open(env, tiny_config()).unwrap();
        fill(&db, 300, "d");
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        for i in 0..300 {
            db.delete(&key(i)).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        for i in (0..300).step_by(23) {
            assert_eq!(db.get(&key(i)).unwrap(), None);
        }
    }
}
