//! The comparison schemes the paper evaluates RocksMash against, built on
//! the same substrate so experiments vary exactly one design at a time.

use std::sync::Arc;

use lsm::Result;
use storage::{CloudStore, Env};

use crate::config::{CacheKind, TieredConfig};
use crate::placement::PlacementPolicy;
use crate::tiered::TieredDb;

/// A storage scheme under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Everything on local NVMe (RocksDB-local): the performance ceiling
    /// and the cost ceiling.
    LocalOnly,
    /// Every SSTable on the cloud, no persistent cache (RocksDB directly
    /// over an object store): the performance floor, cost floor.
    CloudOnly,
    /// Every SSTable on the cloud behind a conventional block-LRU
    /// persistent cache with full metadata (the RocksDB-Cloud-style
    /// state of the art the paper's 1.7× claim is against).
    NaiveHybrid,
    /// The paper's system: hot levels + metadata local, cold levels cloud,
    /// LSM-aware persistent cache, extended WAL.
    RocksMash,
}

impl Scheme {
    /// All schemes, in the order experiment tables list them.
    pub fn all() -> [Scheme; 4] {
        [Scheme::LocalOnly, Scheme::CloudOnly, Scheme::NaiveHybrid, Scheme::RocksMash]
    }

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::LocalOnly => "local-only",
            Scheme::CloudOnly => "cloud-only",
            Scheme::NaiveHybrid => "naive-hybrid",
            Scheme::RocksMash => "rocksmash",
        }
    }

    /// Specialize `base` for this scheme. The base carries the shared
    /// knobs (engine options, cloud latency/pricing, cache size); this
    /// sets placement, cache kind, and WAL strategy.
    pub fn configure(&self, base: TieredConfig) -> TieredConfig {
        match self {
            Scheme::LocalOnly => TieredConfig {
                placement: PlacementPolicy::all_local(),
                cache: CacheKind::None,
                ewal: false,
                ..base
            },
            Scheme::CloudOnly => TieredConfig {
                placement: PlacementPolicy::all_cloud(),
                cache: CacheKind::None,
                ewal: false,
                ..base
            },
            Scheme::NaiveHybrid => TieredConfig {
                placement: PlacementPolicy::all_cloud(),
                cache: CacheKind::Baseline,
                ewal: false,
                ..base
            },
            Scheme::RocksMash => TieredConfig {
                placement: PlacementPolicy::rocksmash_default(),
                cache: CacheKind::Mash,
                ewal: true,
                ..base
            },
        }
    }

    /// Open a store running this scheme.
    pub fn open(&self, env: Arc<dyn Env>, base: TieredConfig) -> Result<TieredDb> {
        TieredDb::open(env, self.configure(base))
    }

    /// Open against an existing cloud store.
    pub fn open_with_cloud(
        &self,
        env: Arc<dyn Env>,
        cloud: CloudStore,
        base: TieredConfig,
    ) -> Result<TieredDb> {
        TieredDb::open_with_cloud(env, cloud, self.configure(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm::Options;
    use storage::MemEnv;

    fn base() -> TieredConfig {
        TieredConfig {
            options: Options {
                write_buffer_size: 16 << 10,
                target_file_size: 16 << 10,
                max_bytes_for_level_base: 32 << 10,
                l0_compaction_trigger: 2,
                ..Options::small_for_tests()
            },
            cache_admission: false,
            ..TieredConfig::small_for_tests()
        }
    }

    fn exercise(db: &TieredDb) {
        for i in 0..800usize {
            db.put(
                format!("key{i:06}").as_bytes(),
                format!("val{i:06}{}", "y".repeat(64)).as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        for i in (0..800usize).step_by(31) {
            assert!(db.get(format!("key{i:06}").as_bytes()).unwrap().is_some(), "key {i}");
        }
    }

    #[test]
    fn local_only_never_touches_cloud() {
        let db = Scheme::LocalOnly.open(Arc::new(MemEnv::new()), base()).unwrap();
        exercise(&db);
        assert_eq!(db.cloud_bytes().unwrap(), 0);
        assert_eq!(db.cloud().cost_tracker().puts(), 0);
    }

    #[test]
    fn cloud_only_puts_all_tables_on_cloud() {
        let db = Scheme::CloudOnly.open(Arc::new(MemEnv::new()), base()).unwrap();
        exercise(&db);
        assert!(db.cloud_bytes().unwrap() > 0);
        // No .sst files locally — only WAL/MANIFEST metadata.
        let report = db.report().unwrap();
        assert!(report.cloud_bytes > report.local_bytes / 4);
        assert!(report.cache.is_none());
    }

    #[test]
    fn naive_hybrid_uses_baseline_cache() {
        let db = Scheme::NaiveHybrid.open(Arc::new(MemEnv::new()), base()).unwrap();
        exercise(&db);
        // Re-read to warm the cache and observe hits.
        for i in (0..800usize).step_by(31) {
            let _ = db.get(format!("key{i:06}").as_bytes()).unwrap();
        }
        let report = db.report().unwrap();
        let cache = report.cache.expect("baseline cache present");
        assert!(cache.inserts > 0);
    }

    #[test]
    fn rocksmash_splits_levels_across_tiers() {
        let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), base()).unwrap();
        exercise(&db);
        let report = db.report().unwrap();
        assert!(report.cloud_bytes > 0, "cold levels on cloud");
        assert!(report.local_bytes > 0, "hot levels + metadata local");
        assert!(report.cache.is_some());
        // eWAL mode: the engine WAL must be off and eWAL files present.
        assert!(!db.engine().options().wal_enabled);
    }

    #[test]
    fn all_schemes_produce_identical_data() {
        // Same workload through every scheme must yield the same reads —
        // schemes differ in placement, never in semantics.
        let mut answers: Vec<Vec<Option<Vec<u8>>>> = Vec::new();
        for scheme in Scheme::all() {
            let db = scheme.open(Arc::new(MemEnv::new()), base()).unwrap();
            for i in 0..300usize {
                db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            for i in (0..300usize).step_by(3) {
                db.delete(format!("k{i:05}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
            db.wait_for_compactions().unwrap();
            let reads: Vec<Option<Vec<u8>>> =
                (0..300usize).map(|i| db.get(format!("k{i:05}").as_bytes()).unwrap()).collect();
            answers.push(reads);
        }
        for window in answers.windows(2) {
            assert_eq!(window[0], window[1], "schemes disagree on data");
        }
    }
}
