//! `rocksmash` — command-line client for a RocksMash store.
//!
//! The store directory holds both tiers: `<dir>/local` is the local tier
//! (WAL, metadata, hot tables, persistent cache file) and `<dir>/cloud`
//! backs the simulated object store, so a database survives across CLI
//! invocations exactly like a deployment would.
//!
//! ```text
//! rocksmash <dir> put <key> <value>
//! rocksmash <dir> get <key>
//! rocksmash <dir> del <key>
//! rocksmash <dir> scan <from> [limit]
//! rocksmash <dir> fill <n> [value-size]
//! rocksmash <dir> compact
//! rocksmash <dir> stats [--json | --prometheus]
//! rocksmash <dir> heat [--top <n>]   # hottest SSTs by decayed score
//! rocksmash <dir> watch [--interval <secs>]
//! rocksmash <dir> doctor           # rule-based health diagnosis
//! rocksmash <dir> debug-bundle <out-dir>  # one-command support bundle
//! rocksmash <dir> events [--kind <tag>] [--since-ns <n>] [--follow]
//! rocksmash <dir> trace get <key>  # traced lookup + stage breakdown
//! rocksmash <dir> trace [--id <n>] # dump span/slow-op events
//! rocksmash <dir> recovery
//! rocksmash <dir> repair          # rebuild metadata from table files
//! ```
//!
//! Flags (before the command): `--scheme <rocksmash|local-only|cloud-only|
//! naive-hybrid>`, `--cloud-latency-us <n>`, `--readahead <blocks>`,
//! `--sync`, `--metrics-listen <addr>` (serve `/metrics`, `/stats.json`,
//! `/heat.json`, `/timeseries.json`, `/health.json` while the command
//! runs — pair with `watch` for a long-lived scrape target).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use rocksmash::{Scheme, TieredConfig, TieredDb};
use storage::{CloudConfig, CloudStore, Env, LatencyModel, LocalEnv};

struct Cli {
    dir: PathBuf,
    scheme: Scheme,
    cloud_latency_us: u64,
    readahead: usize,
    sync: bool,
    metrics_listen: Option<String>,
    command: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rocksmash [--scheme S] [--cloud-latency-us N] [--readahead B] [--sync] \
         [--metrics-listen ADDR] <dir> <command> [args]\n\
         commands: put <k> <v> | get <k> | del <k> | scan <from> [limit]\n\
         \u{20}         fill <n> [value-size] | compact | recovery | repair\n\
         \u{20}         stats [--json | --prometheus] | heat [--top <n>]\n\
         \u{20}         watch [--interval <secs>] | doctor | debug-bundle <out-dir>\n\
         \u{20}         events [--kind <tag>] [--since-ns <n>] [--follow [--interval-ms <m>]]\n\
         \u{20}         trace get <key> | trace [--id <n>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Cli, ExitCode> {
    let mut args = std::env::args().skip(1).peekable();
    let mut scheme = Scheme::RocksMash;
    let mut cloud_latency_us = 1500;
    let mut readahead = 0;
    let mut sync = false;
    let mut metrics_listen: Option<String> = None;
    let mut dir: Option<PathBuf> = None;
    let mut command = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => {
                let v = args.next().ok_or_else(usage)?;
                scheme = match v.as_str() {
                    "rocksmash" => Scheme::RocksMash,
                    "local-only" => Scheme::LocalOnly,
                    "cloud-only" => Scheme::CloudOnly,
                    "naive-hybrid" => Scheme::NaiveHybrid,
                    other => {
                        eprintln!("unknown scheme: {other}");
                        return Err(usage());
                    }
                };
            }
            "--cloud-latency-us" => {
                cloud_latency_us = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--readahead" => {
                readahead = args.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?;
            }
            "--sync" => sync = true,
            "--metrics-listen" => metrics_listen = Some(args.next().ok_or_else(usage)?),
            "--help" | "-h" => return Err(usage()),
            _ if dir.is_none() => dir = Some(PathBuf::from(arg)),
            _ => command.push(arg),
        }
    }
    let dir = dir.ok_or_else(usage)?;
    if command.is_empty() {
        return Err(usage());
    }
    Ok(Cli { dir, scheme, cloud_latency_us, readahead, sync, metrics_listen, command })
}

fn open(cli: &Cli) -> Result<TieredDb, Box<dyn std::error::Error>> {
    let env: Arc<dyn Env> = Arc::new(LocalEnv::new(cli.dir.join("local"))?);
    let mut config = cli.scheme.configure(TieredConfig {
        cloud: CloudConfig {
            latency: LatencyModel {
                base_us: cli.cloud_latency_us,
                bandwidth_mib_s: 200.0,
                jitter_frac: 0.10,
            },
            backing_dir: Some(cli.dir.join("cloud")),
            ..CloudConfig::default()
        },
        ..TieredConfig::rocksmash()
    });
    config.options.sync_writes = cli.sync;
    config.readahead_blocks = cli.readahead;
    config.metrics_listen = cli.metrics_listen.clone();
    config.cache_file = Some(cli.dir.join("local/cache.dat"));
    // The cache file counts against the local tier footprint; keep the
    // CLI default modest (tune per deployment).
    config.cache_bytes = 8 << 20;
    // Keep level sizes CLI-friendly so modest datasets still tier.
    config.options.write_buffer_size = 1 << 20;
    config.options.target_file_size = 1 << 20;
    config.options.max_bytes_for_level_base = 4 << 20;
    let cloud = CloudStore::new(config.cloud.clone());
    Ok(TieredDb::open_with_cloud(env, cloud, config)?)
}

fn run(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    if cli.command.first().map(|s| s.as_str()) == Some("repair") {
        // Repair must run before (instead of) opening the database.
        let env: Arc<dyn Env> = Arc::new(LocalEnv::new(cli.dir.join("local"))?);
        let report = lsm::repair::repair(&env, &lsm::Options::default())?;
        println!(
            "repair: {} tables recovered, {} dropped, {} entries, max seq {}",
            report.tables_recovered, report.tables_dropped, report.entries, report.max_sequence
        );
        return Ok(());
    }
    let db = open(cli)?;
    if let Some(addr) = db.metrics_addr() {
        eprintln!("metrics exporter listening on http://{addr}/metrics");
    }
    let cmd: Vec<&str> = cli.command.iter().map(|s| s.as_str()).collect();
    match cmd.as_slice() {
        ["put", key, value] => {
            db.put(key.as_bytes(), value.as_bytes())?;
            db.flush()?; // CLI invocations are one-shot: make it durable
            println!("OK");
        }
        ["get", key] => match db.get(key.as_bytes())? {
            Some(v) => println!("{}", String::from_utf8_lossy(&v)),
            None => println!("(not found)"),
        },
        ["del", key] => {
            db.delete(key.as_bytes())?;
            db.flush()?;
            println!("OK");
        }
        ["scan", from] => scan(&db, from, 25)?,
        ["scan", from, limit] => scan(&db, from, limit.parse()?)?,
        ["fill", n] => fill(&db, n.parse()?, 128)?,
        ["fill", n, size] => fill(&db, n.parse()?, size.parse()?)?,
        ["compact"] => {
            db.engine().compact_range(None, None)?;
            db.wait_for_compactions()?;
            println!("compaction complete");
            stats(&db)?;
        }
        ["stats"] => stats(&db)?,
        ["stats", "--json"] => println!("{}", db.metrics()?.snapshot().to_json()),
        ["stats", "--prometheus"] => print!("{}", db.metrics()?.snapshot().to_prometheus()),
        ["heat"] => heat_cmd(&db, 10)?,
        ["heat", "--top", n] => heat_cmd(&db, n.parse()?)?,
        ["watch"] => watch(&db, 2)?,
        ["watch", "--interval", secs] => watch(&db, secs.parse()?)?,
        ["doctor"] => doctor_cmd(&db)?,
        ["debug-bundle", out] => {
            let files = db.dump_debug_bundle(std::path::Path::new(out))?;
            println!("wrote {} files to {out}:", files.len());
            for f in &files {
                println!("  {f}");
            }
        }
        ["events", rest @ ..] => events_cmd(&db, rest)?,
        ["trace", rest @ ..] => trace_cmd(&db, rest)?,
        ["recovery"] => match db.recovery_report() {
            Some(r) => println!(
                "recovered {} ops from {} partition files ({} KiB) in {:.1} ms \
                 (rebuild {:.1} ms, ingest {:.1} ms)",
                r.ops(),
                r.files,
                r.bytes / 1024,
                r.total_time().as_secs_f64() * 1000.0,
                r.decode_time.as_secs_f64() * 1000.0,
                r.apply_time.as_secs_f64() * 1000.0,
            ),
            None => println!("engine WAL mode: recovery handled inside lsm::Db"),
        },
        _ => {
            drop(db);
            usage();
            std::process::exit(2);
        }
    }
    db.close()?;
    Ok(())
}

/// `events` with optional filters: `--kind <tag>` keeps only one event
/// type (`SlowOp`, `FlushEnd`, ...), `--since-ns <n>` drops events
/// stamped before `n` journal-relative nanoseconds, and `--follow` keeps
/// polling the in-process journal for new entries until interrupted.
fn events_cmd(db: &TieredDb, args: &[&str]) -> Result<(), Box<dyn std::error::Error>> {
    let mut kind: Option<String> = None;
    let mut since_ns: Option<u64> = None;
    let mut follow = false;
    let mut interval_ms: u64 = 500;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match *arg {
            "--kind" => kind = Some(it.next().ok_or("--kind needs an event tag")?.to_string()),
            "--since-ns" => {
                since_ns = Some(it.next().ok_or("--since-ns needs a timestamp")?.parse()?);
            }
            "--follow" => follow = true,
            "--interval-ms" => {
                interval_ms = it.next().ok_or("--interval-ms needs a value")?.parse()?;
            }
            other => return Err(format!("unknown events flag: {other}").into()),
        }
    }
    let mut last_seq = 0;
    loop {
        for event in db.observer().journal().events() {
            if event.seq <= last_seq {
                continue;
            }
            last_seq = event.seq;
            if let Some(k) = kind.as_deref() {
                if event.kind.tag() != k {
                    continue;
                }
            }
            if let Some(t) = since_ns {
                if event.ts_ns < t {
                    continue;
                }
            }
            println!("{}", event.to_json());
        }
        if !follow {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
    Ok(())
}

/// `trace get <key>` runs a traced point lookup and prints its value,
/// stage breakdown, and the spans it produced; bare `trace` dumps every
/// span/slow-op event in the journal, `--id <n>` restricts to one trace.
fn trace_cmd(db: &TieredDb, args: &[&str]) -> Result<(), Box<dyn std::error::Error>> {
    match args {
        ["get", key] => trace_get(db, key),
        [] => {
            dump_trace(db, None);
            Ok(())
        }
        ["--id", id] => {
            dump_trace(db, Some(id.parse()?));
            Ok(())
        }
        _ => Err("usage: trace get <key> | trace [--id <n>]".into()),
    }
}

fn trace_get(db: &TieredDb, key: &str) -> Result<(), Box<dyn std::error::Error>> {
    // Journal seqs start at 0, so an empty journal (a freshly opened,
    // quiet store — the common CLI case) must not exclude seq 0.
    let after = db.observer().journal().events().last().map(|e| e.seq + 1).unwrap_or(0);
    let (value, ctx) = db.with_perf_context(|db| db.get(key.as_bytes()));
    match value? {
        Some(v) => println!("{}", String::from_utf8_lossy(&v)),
        None => println!("(not found)"),
    }
    println!("breakdown: {}", ctx.to_json());
    // The lookup's root span is the newest "get" SpanStart since `after`.
    let mut trace_id = 0;
    for event in db.observer().journal().events() {
        if event.seq < after {
            continue;
        }
        if let obs::EventKind::SpanStart { trace_id: t, name, .. } = &event.kind {
            if name == "get" {
                trace_id = *t;
            }
        }
    }
    if trace_id == 0 {
        println!("(no trace recorded; is observability enabled?)");
        return Ok(());
    }
    println!("trace {trace_id}:");
    dump_trace(db, Some(trace_id));
    Ok(())
}

fn event_trace_id(kind: &obs::EventKind) -> Option<u64> {
    match kind {
        obs::EventKind::SpanStart { trace_id, .. }
        | obs::EventKind::SpanEnd { trace_id, .. }
        | obs::EventKind::SlowOp { trace_id, .. } => Some(*trace_id),
        _ => None,
    }
}

fn dump_trace(db: &TieredDb, id: Option<u64>) {
    for event in db.observer().journal().events() {
        let keep = match (id, event_trace_id(&event.kind)) {
            (None, Some(_)) => true,
            (Some(want), Some(t)) => t == want,
            _ => false,
        };
        if keep {
            println!("{}", event.to_json());
        }
    }
}

fn scan(db: &TieredDb, from: &str, limit: usize) -> Result<(), Box<dyn std::error::Error>> {
    let rows = db.scan(from.as_bytes(), limit)?;
    for (k, v) in &rows {
        println!("{} = {}", String::from_utf8_lossy(k), String::from_utf8_lossy(v));
    }
    println!("({} rows)", rows.len());
    let report = db.report()?;
    if report.prefetch_issued > 0 || report.coalesced_gets > 0 {
        println!(
            "readahead: {} blocks prefetched ({} useful), {} coalesced GETs saved {} requests",
            report.prefetch_issued,
            report.prefetch_useful,
            report.coalesced_gets,
            report.requests_saved
        );
    }
    Ok(())
}

fn fill(db: &TieredDb, n: u64, value_size: usize) -> Result<(), Box<dyn std::error::Error>> {
    let started = std::time::Instant::now();
    for i in 0..n {
        let value: Vec<u8> =
            (0..value_size).map(|j| b'a' + ((i as usize + j) % 26) as u8).collect();
        db.put(format!("key{i:012}").as_bytes(), &value)?;
    }
    db.flush()?;
    db.wait_for_compactions()?;
    let secs = started.elapsed().as_secs_f64();
    println!(
        "loaded {n} records ({value_size} B values) in {secs:.2}s ({:.1} kops/s)",
        n as f64 / secs / 1000.0
    );
    stats(db)?;
    Ok(())
}

/// `heat [--top N]`: hottest SSTs by decayed access score, with tier
/// residency and per-table cloud-GET attribution.
fn heat_cmd(db: &TieredDb, top: usize) -> Result<(), Box<dyn std::error::Error>> {
    // Sampling first advances the heat decay clock to wall time, so the
    // scores printed below are normalized to "now".
    let _ = db.sample_metrics()?;
    let report = db.report()?;
    let heat = match report.heat {
        Some(heat) => heat,
        None => {
            println!("(no heat data; is observability enabled?)");
            return Ok(());
        }
    };
    let r = &heat.residency;
    println!(
        "residency: {} local files ({:.2} MiB) / {} cloud files ({:.2} MiB), \
         {:.2} MiB cache-backed",
        r.local_files,
        r.local_bytes as f64 / (1 << 20) as f64,
        r.cloud_files,
        r.cloud_bytes as f64 / (1 << 20) as f64,
        r.cache_backed_bytes as f64 / (1 << 20) as f64,
    );
    if heat.dropped > 0 {
        println!("({} accesses dropped: heat table full of hotter entries)", heat.dropped);
    }
    println!(
        "{:>8}  {:>6}  {:>10}  {:>10}  {:>10}  {:>10}  {:>6}",
        "sst", "tier", "score", "accesses", "cloud GETs", "cache hits", "cloud%"
    );
    for e in heat.entries.iter().take(top.max(1)) {
        println!(
            "{:>8}  {:>6}  {:>10.2}  {:>10}  {:>10}  {:>10}  {:>5.1}%",
            e.file,
            e.tier.as_deref().unwrap_or("?"),
            e.score,
            e.accesses,
            e.cloud_gets,
            e.cache_hits,
            e.cloud_share() * 100.0,
        );
    }
    println!("(tick {}, {} tracked tables)", heat.tick, heat.entries.len());
    Ok(())
}

/// `doctor`: push two metrics samples a second apart (rate windows need a
/// base and a newest point), run every health rule, and print the
/// severity-ranked findings with their evidence and remediation.
fn doctor_cmd(db: &TieredDb) -> Result<(), Box<dyn std::error::Error>> {
    let _ = db.sample_metrics()?;
    std::thread::sleep(std::time::Duration::from_secs(1));
    let _ = db.sample_metrics()?;
    let report = db.health_report();
    println!("doctor: {} rules evaluated", report.rules_evaluated);
    if report.healthy() {
        println!("healthy: no findings");
        return Ok(());
    }
    for f in &report.findings {
        println!("[{}] {}: {}", f.severity.label(), f.rule, f.summary);
        println!("    evidence: {}", f.evidence);
        println!("    remedy:   {}", f.remediation);
    }
    Ok(())
}

/// Print the live stats dump plus windowed rates every `interval_secs`
/// until interrupted. Each iteration pushes one sample into the
/// time-series ring, so the rates work even without the background
/// sampler's cadence.
fn watch(db: &TieredDb, interval_secs: u64) -> Result<(), Box<dyn std::error::Error>> {
    let interval = std::time::Duration::from_secs(interval_secs.max(1));
    loop {
        let snapshot = db.sample_metrics()?;
        println!("--- {} ---", chrono_less_timestamp(db));
        print!("{}", db.stats_string()?);
        for (label, rates) in db.timeseries().all_window_rates() {
            let fmt = |v: Option<f64>| match v {
                Some(v) => format!("{v:.1}"),
                None => "-".into(),
            };
            let pct = |v: Option<f64>| match v {
                Some(v) => format!("{:.1}%", v * 100.0),
                None => "-".into(),
            };
            println!(
                "rates[{label}]: {} ops/s, {} cloud B/s, {} cache hit, {} stall share",
                fmt(rates.ops_per_sec),
                fmt(rates.cloud_get_bytes_per_sec),
                pct(rates.cache_hit_rate),
                pct(rates.stall_share),
            );
        }
        let debt = snapshot.gauges.get("compaction_debt_bytes").copied().unwrap_or(0.0);
        let w_amp = snapshot.gauges.get("write_amp").copied().unwrap_or(0.0);
        let health = db.health_report();
        let doctor_line = match health.findings.first() {
            Some(f) => {
                format!(
                    "{} finding(s), worst [{}] {}",
                    health.findings.len(),
                    f.severity.label(),
                    f.rule
                )
            }
            None => "healthy".to_string(),
        };
        println!(
            "health: w-amp {w_amp:.2}, compaction debt {:.1} MiB, doctor {doctor_line}",
            debt / (1 << 20) as f64,
        );
        std::thread::sleep(interval);
    }
}

/// Journal-relative uptime stamp for the watch header (no wall-clock
/// formatting machinery in the dependency set).
fn chrono_less_timestamp(db: &TieredDb) -> String {
    format!("t+{:.1}s", db.observer().now_ns() as f64 / 1e9)
}

fn stats(db: &TieredDb) -> Result<(), Box<dyn std::error::Error>> {
    let report = db.report()?;
    print!("{}", db.engine().debug_string());
    println!(
        "tiers:    {:.2} MiB local ({:.1}%) / {:.2} MiB cloud",
        report.local_bytes as f64 / (1 << 20) as f64,
        report.local_fraction() * 100.0,
        report.cloud_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "engine:   {} writes, {} gets, {} flushes, {} compactions",
        report.engine_writes, report.engine_gets, report.engine_flushes, report.engine_compactions
    );
    println!(
        "cloud:    {} GETs, {} PUTs, {:.2} MiB egress, {} uploads",
        report.cloud.reads,
        report.cloud.writes,
        report.cost.egress_bytes as f64 / (1 << 20) as f64,
        report.uploads
    );
    println!(
        "cost:     ${:.6}/month capacity, ${:.6} requests+egress this session",
        report.cost.cloud_capacity_cost + report.cost.local_capacity_cost,
        report.cost.request_cost + report.cost.egress_cost
    );
    if report.prefetch_issued > 0 || report.coalesced_gets > 0 {
        println!(
            "readahead: {} blocks prefetched ({} useful), {} coalesced GETs saved {} requests",
            report.prefetch_issued,
            report.prefetch_useful,
            report.coalesced_gets,
            report.requests_saved
        );
    }
    if let Some(cache) = report.cache {
        println!(
            "cache:    {:.1}% hit ratio ({} hits / {} misses), {} KiB metadata, {} invalidations",
            cache.hit_ratio() * 100.0,
            cache.hits,
            cache.misses,
            report.cache_metadata_bytes / 1024,
            cache.invalidations
        );
    }
    // Latency histograms + recent events, without repeating the counters
    // and gauges the lines above already cover.
    let latency = obs::MetricsRegistry::new(Arc::clone(db.observer())).snapshot();
    if !latency.latency.is_empty() {
        print!("{}", latency.stats_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(code) => return code,
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
