//! Tier placement policy: which LSM levels live on which storage tier.
//!
//! Two layers:
//!
//! - [`PlacementPolicy`] is the static, level-based split (levels
//!   `0..cloud_from_level` local, deeper levels cloud). It is cheap,
//!   deterministic, and what every baseline scheme uses.
//! - [`TierPolicy`] is the pluggable interface on top: given the current
//!   set of live SSTs with their sizes, tiers, and decayed heat scores, a
//!   policy decides where fresh flush/compaction outputs land
//!   ([`TierPolicy::place_new`]) and which already-placed files should be
//!   promoted or demoted ([`TierPolicy::plan`]). The static policy
//!   implements it with an empty plan; [`HeatAware`] layers a local-tier
//!   byte budget and a greedy hottest-first keep set on top of the static
//!   split, which is what the background promotion pass executes.

use serde::{Deserialize, Serialize};

/// Storage tier for a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Fast, expensive, small: local NVMe.
    Local,
    /// Slow, cheap, elastic: cloud object storage.
    Cloud,
}

/// Level-based placement: levels `0..cloud_from_level` (plus the WAL and
/// all metadata) stay local; deeper levels go to the cloud.
///
/// Because leveled compaction pushes data down as it ages and the upper
/// levels are a geometrically small fraction of the total, this keeps the
/// frequently accessed data local — the paper's pillar 1 — while the bulk
/// of capacity rides the cheap tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPolicy {
    /// First level that is stored on the cloud tier.
    pub cloud_from_level: usize,
}

impl PlacementPolicy {
    /// Everything local (the local-only baseline).
    pub fn all_local() -> Self {
        PlacementPolicy { cloud_from_level: usize::MAX }
    }

    /// Everything on the cloud (the cloud-only / RocksDB-Cloud-style
    /// baselines).
    pub fn all_cloud() -> Self {
        PlacementPolicy { cloud_from_level: 0 }
    }

    /// The RocksMash default: L0 and L1 local, L2+ on the cloud.
    pub fn rocksmash_default() -> Self {
        PlacementPolicy { cloud_from_level: 2 }
    }

    /// Tier for a file created at `level`.
    pub fn tier_for_level(&self, level: usize) -> Tier {
        if level >= self.cloud_from_level {
            Tier::Cloud
        } else {
            Tier::Local
        }
    }

    /// Whether any level at all is cloud-resident.
    pub fn uses_cloud(&self) -> bool {
        self.cloud_from_level != usize::MAX
    }
}

/// One live SST as seen by a placement policy: identity, size, current
/// tier, and its decayed heat score (see `obs::heat`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileState {
    /// Table file number.
    pub file: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Tier the file currently lives on.
    pub tier: Tier,
    /// Decayed access score; 0.0 means never accessed (or fully cooled).
    pub score: f64,
}

/// What a policy wants moved. Files appear in execution-priority order:
/// `promote` hottest-first, `demote` coldest-first, so an incremental
/// executor that processes a prefix of each list still does the most
/// valuable work first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Cloud-resident files to pull back to local storage, hottest first.
    pub promote: Vec<u64>,
    /// Local files to push to the cloud, coldest first.
    pub demote: Vec<u64>,
}

impl PlacementPlan {
    /// True when the plan moves nothing.
    pub fn is_empty(&self) -> bool {
        self.promote.is_empty() && self.demote.is_empty()
    }
}

/// Pluggable tier-placement policy.
///
/// Implementations must be cheap and pure: `plan` in particular is called
/// with a snapshot and must not touch storage, so it can be property-tested
/// deterministically.
pub trait TierPolicy: Send + Sync {
    /// Tier for a freshly written table (flush or compaction output) at
    /// `level` with the given size. `local_bytes` is the current
    /// local-tier data footprint, for budget-aware policies.
    fn place_new(&self, level: usize, bytes: u64, local_bytes: u64) -> Tier;

    /// Given the live files, decide which should move. The default policy
    /// never moves anything after initial placement.
    fn plan(&self, files: &[FileState]) -> PlacementPlan;

    /// The static level split this policy degrades to (used by migration
    /// and by code that needs a `PlacementPolicy` for compatibility).
    fn static_split(&self) -> PlacementPolicy;

    /// Whether this policy can ever place a file on the cloud tier.
    fn uses_cloud(&self) -> bool {
        self.static_split().uses_cloud()
    }
}

impl TierPolicy for PlacementPolicy {
    fn place_new(&self, level: usize, _bytes: u64, _local_bytes: u64) -> Tier {
        self.tier_for_level(level)
    }

    fn plan(&self, _files: &[FileState]) -> PlacementPlan {
        PlacementPlan::default()
    }

    fn static_split(&self) -> PlacementPolicy {
        *self
    }
}

/// Heat-aware placement: keep the hottest SSTs local, subject to a byte
/// budget; everything else lives on the cloud.
///
/// The plan is a greedy prefix-keep over the files sorted by decayed score
/// (descending, ties broken by file number for determinism): walk the
/// ranking accumulating bytes, keep every file that still fits the budget,
/// and stop at the first file that would overflow it. Kept cloud-resident
/// files whose score clears `min_score` are promoted; local files outside
/// the kept prefix are demoted. Because the kept set is a prefix of the
/// score ranking, no demoted file is ever hotter than a kept one — the
/// greedy-optimality invariant the proptest checks.
#[derive(Debug, Clone, Copy)]
pub struct HeatAware {
    /// Static split used for fresh outputs (heat has no opinion on a file
    /// that has never been read).
    pub base: PlacementPolicy,
    /// Maximum bytes of SST data the local tier may hold.
    pub local_budget_bytes: u64,
    /// Minimum decayed score a cloud file needs before promotion is worth
    /// a whole-SST download.
    pub min_score: f64,
}

impl HeatAware {
    /// Heat-aware policy over the RocksMash default split.
    pub fn new(local_budget_bytes: u64, min_score: f64) -> Self {
        HeatAware { base: PlacementPolicy::rocksmash_default(), local_budget_bytes, min_score }
    }
}

impl TierPolicy for HeatAware {
    fn place_new(&self, level: usize, bytes: u64, local_bytes: u64) -> Tier {
        // Start from the level split, but never let a fresh output blow
        // the local budget: when local is already full, spill to cloud and
        // let the next promotion pass sort the ranking out.
        match self.base.tier_for_level(level) {
            Tier::Local if local_bytes.saturating_add(bytes) > self.local_budget_bytes => {
                Tier::Cloud
            }
            tier => tier,
        }
    }

    fn plan(&self, files: &[FileState]) -> PlacementPlan {
        let mut ranked: Vec<&FileState> = files.iter().collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.file.cmp(&b.file))
        });
        let mut plan = PlacementPlan::default();
        let mut kept_bytes = 0u64;
        let mut keeping = true;
        // `demote` collects in hottest-first order while we walk the
        // ranking; reversed at the end so execution is coldest-first.
        for f in &ranked {
            if keeping && kept_bytes.saturating_add(f.bytes) <= self.local_budget_bytes {
                kept_bytes += f.bytes;
                if f.tier == Tier::Cloud && f.score >= self.min_score {
                    plan.promote.push(f.file);
                }
            } else {
                // First overflow ends the kept prefix: a strict prefix of
                // the ranking is what guarantees greedy optimality.
                keeping = false;
                if f.tier == Tier::Local {
                    plan.demote.push(f.file);
                }
            }
        }
        plan.demote.reverse();
        plan
    }

    fn static_split(&self) -> PlacementPolicy {
        self.base
    }

    fn uses_cloud(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_splits_at_l2() {
        let p = PlacementPolicy::rocksmash_default();
        assert_eq!(p.tier_for_level(0), Tier::Local);
        assert_eq!(p.tier_for_level(1), Tier::Local);
        assert_eq!(p.tier_for_level(2), Tier::Cloud);
        assert_eq!(p.tier_for_level(6), Tier::Cloud);
        assert!(p.uses_cloud());
    }

    #[test]
    fn all_local_never_clouds() {
        let p = PlacementPolicy::all_local();
        for level in 0..64 {
            assert_eq!(p.tier_for_level(level), Tier::Local);
        }
        assert!(!p.uses_cloud());
    }

    #[test]
    fn all_cloud_always_clouds() {
        let p = PlacementPolicy::all_cloud();
        assert_eq!(p.tier_for_level(0), Tier::Cloud);
        assert!(p.uses_cloud());
    }

    fn fs(file: u64, bytes: u64, tier: Tier, score: f64) -> FileState {
        FileState { file, bytes, tier, score }
    }

    #[test]
    fn static_policy_plans_nothing() {
        let p = PlacementPolicy::rocksmash_default();
        let files = [fs(1, 100, Tier::Cloud, 50.0), fs(2, 100, Tier::Local, 0.0)];
        assert!(TierPolicy::plan(&p, &files).is_empty());
        assert_eq!(p.place_new(0, 1 << 30, u64::MAX), Tier::Local);
    }

    #[test]
    fn heat_aware_promotes_hot_cloud_files_within_budget() {
        let p = HeatAware::new(250, 1.0);
        let files = [
            fs(1, 100, Tier::Cloud, 90.0),
            fs(2, 100, Tier::Local, 50.0),
            fs(3, 100, Tier::Cloud, 10.0),
            fs(4, 100, Tier::Local, 1.0),
        ];
        let plan = p.plan(&files);
        // Budget fits files 1 and 2 (200 bytes); file 3 would overflow.
        assert_eq!(plan.promote, vec![1]);
        // Local files outside the kept prefix, coldest first.
        assert_eq!(plan.demote, vec![4]);
    }

    #[test]
    fn heat_aware_skips_promotions_below_min_score() {
        let p = HeatAware::new(1000, 5.0);
        let files = [fs(1, 100, Tier::Cloud, 4.9), fs(2, 100, Tier::Cloud, 5.0)];
        let plan = p.plan(&files);
        assert_eq!(plan.promote, vec![2]);
        assert!(plan.demote.is_empty());
    }

    #[test]
    fn heat_aware_never_demotes_hotter_than_kept() {
        let p = HeatAware::new(300, 0.0);
        let files = [
            fs(1, 200, Tier::Local, 10.0),
            fs(2, 200, Tier::Local, 9.0),
            fs(3, 200, Tier::Local, 8.0),
        ];
        let plan = p.plan(&files);
        // Only file 1 fits; 2 and 3 are demoted coldest-first.
        assert_eq!(plan.demote, vec![3, 2]);
        assert!(plan.promote.is_empty());
    }

    #[test]
    fn heat_aware_place_new_respects_budget() {
        let p = HeatAware::new(1000, 0.0);
        assert_eq!(p.place_new(0, 100, 0), Tier::Local);
        assert_eq!(p.place_new(0, 100, 950), Tier::Cloud);
        assert_eq!(p.place_new(3, 100, 0), Tier::Cloud);
    }

    #[test]
    fn ties_break_by_file_number() {
        let p = HeatAware::new(100, 0.0);
        let files = [fs(9, 100, Tier::Cloud, 1.0), fs(3, 100, Tier::Cloud, 1.0)];
        let plan = p.plan(&files);
        // Equal scores: the lower file number wins the budget slot.
        assert_eq!(plan.promote, vec![3]);
    }
}
