//! Tier placement policy: which LSM levels live on which storage tier.

use serde::{Deserialize, Serialize};

/// Storage tier for a table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Fast, expensive, small: local NVMe.
    Local,
    /// Slow, cheap, elastic: cloud object storage.
    Cloud,
}

/// Level-based placement: levels `0..cloud_from_level` (plus the WAL and
/// all metadata) stay local; deeper levels go to the cloud.
///
/// Because leveled compaction pushes data down as it ages and the upper
/// levels are a geometrically small fraction of the total, this keeps the
/// frequently accessed data local — the paper's pillar 1 — while the bulk
/// of capacity rides the cheap tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPolicy {
    /// First level that is stored on the cloud tier.
    pub cloud_from_level: usize,
}

impl PlacementPolicy {
    /// Everything local (the local-only baseline).
    pub fn all_local() -> Self {
        PlacementPolicy { cloud_from_level: usize::MAX }
    }

    /// Everything on the cloud (the cloud-only / RocksDB-Cloud-style
    /// baselines).
    pub fn all_cloud() -> Self {
        PlacementPolicy { cloud_from_level: 0 }
    }

    /// The RocksMash default: L0 and L1 local, L2+ on the cloud.
    pub fn rocksmash_default() -> Self {
        PlacementPolicy { cloud_from_level: 2 }
    }

    /// Tier for a file created at `level`.
    pub fn tier_for_level(&self, level: usize) -> Tier {
        if level >= self.cloud_from_level {
            Tier::Cloud
        } else {
            Tier::Local
        }
    }

    /// Whether any level at all is cloud-resident.
    pub fn uses_cloud(&self) -> bool {
        self.cloud_from_level != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_splits_at_l2() {
        let p = PlacementPolicy::rocksmash_default();
        assert_eq!(p.tier_for_level(0), Tier::Local);
        assert_eq!(p.tier_for_level(1), Tier::Local);
        assert_eq!(p.tier_for_level(2), Tier::Cloud);
        assert_eq!(p.tier_for_level(6), Tier::Cloud);
        assert!(p.uses_cloud());
    }

    #[test]
    fn all_local_never_clouds() {
        let p = PlacementPolicy::all_local();
        for level in 0..64 {
            assert_eq!(p.tier_for_level(level), Tier::Local);
        }
        assert!(!p.uses_cloud());
    }

    #[test]
    fn all_cloud_always_clouds() {
        let p = PlacementPolicy::all_cloud();
        assert_eq!(p.tier_for_level(0), Tier::Cloud);
        assert!(p.uses_cloud());
    }
}
