//! Aggregate reporting across the engine, tiers, cache, and cost model.

use std::sync::atomic::Ordering;

use lsm::Result;
use mashcache::CacheStats;
use storage::{CostReport, StatsSnapshot};

use crate::tiered::TieredDb;

/// One scheme's full measurement snapshot (a row in most experiment
/// tables).
#[derive(Debug, Clone)]
pub struct SchemeReport {
    /// Engine write batches applied.
    pub engine_writes: u64,
    /// Engine point lookups served.
    pub engine_gets: u64,
    /// Memtable flushes.
    pub engine_flushes: u64,
    /// Compactions run.
    pub engine_compactions: u64,
    /// Compaction bytes read.
    pub compact_bytes_in: u64,
    /// Compaction bytes written.
    pub compact_bytes_out: u64,
    /// Writer stall time, nanoseconds.
    pub stall_ns: u64,
    /// Cloud request statistics.
    pub cloud: StatsSnapshot,
    /// Billing summary.
    pub cost: CostReport,
    /// Bytes on the local tier.
    pub local_bytes: u64,
    /// Bytes on the cloud tier.
    pub cloud_bytes: u64,
    /// SSTables uploaded to the cloud.
    pub uploads: u64,
    /// Persistent cache counters, when a cache is configured.
    pub cache: Option<CacheStats>,
    /// Persistent cache metadata footprint in bytes.
    pub cache_metadata_bytes: usize,
    /// Data blocks scheduled for background readahead.
    pub prefetch_issued: u64,
    /// Prefetched blocks later served to a demand read (block cache hits
    /// on readahead-staged entries).
    pub prefetch_useful: u64,
    /// Coalesced vectored GETs issued against the cloud tier.
    pub coalesced_gets: u64,
    /// Cloud requests avoided by coalescing (caller ranges − billed GETs).
    pub requests_saved: u64,
}

impl SchemeReport {
    /// Gather a report from a live store.
    pub fn collect(db: &TieredDb) -> Result<SchemeReport> {
        let stats = db.engine().stats();
        let router = db.router();
        let local_bytes = db.local_bytes()?;
        let cloud_bytes = db.cloud_bytes()?;
        let cost =
            db.cloud().cost_tracker().report(db.cloud().cost_model(), cloud_bytes, local_bytes);
        let (cache, cache_metadata_bytes) = match router.cache() {
            Some(cache) => (Some(cache.stats()), cache.metadata_bytes()),
            None => (None, 0),
        };
        let cloud_snapshot = db.cloud().stats().snapshot();
        let prefetch_issued = db.engine().prefetcher().map(|p| p.issued()).unwrap_or(0);
        let prefetch_useful = db.engine().block_cache().map(|c| c.prefetch_useful()).unwrap_or(0);
        Ok(SchemeReport {
            engine_writes: stats.writes.load(Ordering::Relaxed),
            engine_gets: stats.gets.load(Ordering::Relaxed),
            engine_flushes: stats.flushes.load(Ordering::Relaxed),
            engine_compactions: stats.compactions.load(Ordering::Relaxed),
            compact_bytes_in: stats.compact_bytes_in.load(Ordering::Relaxed),
            compact_bytes_out: stats.compact_bytes_out.load(Ordering::Relaxed),
            stall_ns: stats.stall_ns.load(Ordering::Relaxed),
            coalesced_gets: cloud_snapshot.coalesced_gets,
            requests_saved: cloud_snapshot.requests_saved,
            cloud: cloud_snapshot,
            cost,
            local_bytes,
            cloud_bytes,
            uploads: router.stats().uploads.load(Ordering::Relaxed),
            cache,
            cache_metadata_bytes,
            prefetch_issued,
            prefetch_useful,
        })
    }

    /// Fraction of capacity on the local tier.
    pub fn local_fraction(&self) -> f64 {
        let total = self.local_bytes + self.cloud_bytes;
        if total == 0 {
            0.0
        } else {
            self.local_bytes as f64 / total as f64
        }
    }
}
