//! Aggregate reporting across the engine, tiers, cache, and cost model.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use lsm::cache::BlockCache;
use lsm::{DbStats, GroupCommitStats, Prefetcher, Result};
use mashcache::CacheStats;
use storage::{CloudStore, CostReport, Env, ObjectStore, StatsSnapshot};

use crate::router::TieredRouter;
use crate::tiered::TieredDb;

/// Hottest SSTs carried in a [`SchemeReport`]'s heat snapshot (and served
/// by the exporter's `/heat.json`).
pub(crate) const HEAT_TOP_N: usize = 32;

/// One scheme's full measurement snapshot (a row in most experiment
/// tables).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SchemeReport {
    /// Engine write batches applied.
    pub engine_writes: u64,
    /// Engine point lookups served. Each key resolved through
    /// [`lsm::Db::multi_get`] also counts once here, even though the whole
    /// batch shares a single memtable/version snapshot.
    pub engine_gets: u64,
    /// Memtable flushes.
    pub engine_flushes: u64,
    /// Bytes written to L0 by memtable flushes (the denominator of the
    /// store-wide write amplification).
    #[serde(default)]
    pub flush_bytes: u64,
    /// Compactions run.
    pub engine_compactions: u64,
    /// Compaction bytes read.
    pub compact_bytes_in: u64,
    /// Compaction bytes written.
    pub compact_bytes_out: u64,
    /// Writer stall time, nanoseconds.
    pub stall_ns: u64,
    /// Flush attempts retried after a background failure.
    #[serde(default)]
    pub flush_retries: u64,
    /// Subcompaction workers spawned (range-partitioned compaction splits).
    #[serde(default)]
    pub subcompactions: u64,
    /// Peak number of compactions running concurrently.
    #[serde(default)]
    pub compaction_parallelism_peak: u64,
    /// Peak depth of the immutable-memtable flush queue.
    #[serde(default)]
    pub imm_queue_peak: u64,
    /// Group-commit rounds led (engine WAL + eWAL queues). Each round is
    /// one log append pass and at most one fsync.
    #[serde(default)]
    pub group_commits: u64,
    /// Write batches committed through those rounds;
    /// `group_commit_batches / group_commits` is the mean group size.
    #[serde(default)]
    pub group_commit_batches: u64,
    /// Writers that arrived while another leader was mid-commit on their
    /// shard and had to wait (shard contention / grouping opportunity).
    #[serde(default)]
    pub writer_shard_conflicts: u64,
    /// Cloud request statistics.
    pub cloud: StatsSnapshot,
    /// Billing summary.
    pub cost: CostReport,
    /// Bytes on the local tier.
    pub local_bytes: u64,
    /// Bytes on the cloud tier.
    pub cloud_bytes: u64,
    /// SSTables uploaded to the cloud.
    pub uploads: u64,
    /// Hot SSTs pulled back from the cloud tier by promotion passes.
    #[serde(default)]
    pub promotions: u64,
    /// Cold local SSTs pushed to the cloud by the promotion budget.
    #[serde(default)]
    pub demotions: u64,
    /// Bytes moved across tiers by promotion passes (both directions).
    #[serde(default)]
    pub promotion_bytes: u64,
    /// Persistent cache counters, when a cache is configured.
    pub cache: Option<CacheStats>,
    /// Persistent cache metadata footprint in bytes.
    pub cache_metadata_bytes: usize,
    /// Data blocks scheduled for background readahead.
    pub prefetch_issued: u64,
    /// Prefetched blocks later served to a demand read (block cache hits
    /// on readahead-staged entries).
    pub prefetch_useful: u64,
    /// Prefetched blocks evicted from the block cache before any demand
    /// read touched them — pure wasted egress. Bounded scans should keep
    /// this near zero.
    #[serde(default)]
    pub prefetch_wasted_blocks: u64,
    /// Filter blocks that were present on disk but failed to decode
    /// (corruption surfaced instead of silently dropping the filter).
    #[serde(default)]
    pub filter_decode_failures: u64,
    /// Coalesced vectored GETs issued against the cloud tier.
    pub coalesced_gets: u64,
    /// Cloud requests avoided by coalescing (caller ranges − billed GETs).
    pub requests_saved: u64,
    /// Cloud operations retried after a transient fault.
    pub retry_attempts: u64,
    /// Cloud operations that exhausted their retry policy and surfaced the
    /// last error to the caller.
    pub retry_exhausted: u64,
    /// Cloud operations that failed at least once but ultimately succeeded
    /// within the policy.
    pub retry_recovered: u64,
    /// Aggregated per-operation stage breakdown (sampled or explicitly
    /// captured perf contexts), when any were recorded. Absent on reports
    /// from stores that never captured one, and on result files written
    /// before perf contexts existed.
    #[serde(default)]
    pub perf: Option<obs::PerfContext>,
    /// Number of operations whose perf context was folded into `perf`.
    #[serde(default)]
    pub perf_ops: u64,
    /// Decayed per-SST heat scores and per-tier residency accounting,
    /// when the store records them (observability on). Absent on reports
    /// from stores with observability off and on result files written
    /// before heat tracking existed.
    #[serde(default)]
    pub heat: Option<obs::HeatSnapshot>,
    /// Per-level amplification accounting (shape, byte flows, derived
    /// W/R/space-amp, compaction debt), with the per-tier byte split
    /// filled from the residency ledger when observability is on. Absent
    /// on result files written before level accounting existed.
    #[serde(default)]
    pub levels: Option<obs::LevelTable>,
}

/// `Arc`/`Clone` handles onto everything a [`SchemeReport`] samples.
///
/// Detached threads — the background metrics sampler and the HTTP
/// exporter — must not borrow the `TieredDb` itself (it outlives neither
/// of them by construction, not by lifetime), and must never hold an
/// engine lock while serializing a response. Collecting through this
/// bundle touches only atomics and short-lived internal locks, never the
/// write path's mutexes.
#[derive(Clone)]
pub struct StatsSource {
    pub(crate) env: Arc<dyn Env>,
    pub(crate) cloud: CloudStore,
    pub(crate) router: Arc<TieredRouter>,
    pub(crate) engine_stats: Arc<DbStats>,
    pub(crate) prefetcher: Option<Arc<Prefetcher>>,
    pub(crate) block_cache: Option<Arc<BlockCache>>,
    pub(crate) engine_gc: Arc<GroupCommitStats>,
    pub(crate) ewal_gc: Option<Arc<GroupCommitStats>>,
    pub(crate) observer: Arc<obs::Observer>,
    pub(crate) timeseries: Arc<obs::TimeSeries>,
    /// Published current version: lists the live tree without taking the
    /// engine state lock (a stalled write path cannot block a scrape).
    pub(crate) version: Arc<parking_lot::RwLock<Arc<lsm::version::Version>>>,
    /// Health doctor with onset tracking, shared by the sampler, the
    /// `/health.json` endpoint, and the CLI.
    pub(crate) health: Arc<obs::HealthMonitor>,
}

impl StatsSource {
    /// The store-wide observer these handles were taken from.
    pub fn observer(&self) -> &Arc<obs::Observer> {
        &self.observer
    }

    /// The metrics time-series ring fed by the background sampler.
    pub fn timeseries(&self) -> &Arc<obs::TimeSeries> {
        &self.timeseries
    }

    /// Snapshot the per-level accounting table, with the per-tier byte
    /// split joined in from the residency ledger (observability on).
    pub fn level_table(&self) -> obs::LevelTable {
        let mut table = self.engine_stats.levels.snapshot();
        if self.observer.is_enabled() {
            let version = Arc::clone(&self.version.read());
            let residency = self.observer.heat().residency();
            for (level, files) in version.levels.iter().enumerate() {
                let Some(row) = table.levels.get_mut(level) else { break };
                for meta in files {
                    match residency.tier_of(meta.number) {
                        Some(obs::ResidencyTier::Local) => row.local_bytes += meta.file_size,
                        Some(obs::ResidencyTier::Cloud) => row.cloud_bytes += meta.file_size,
                        None => {}
                    }
                }
            }
        }
        table
    }

    /// Run the health doctor over the trailing metrics window and the
    /// current level table. Publishes a journal event per newly-tripped
    /// rule (onset only, via the shared [`obs::HealthMonitor`]).
    pub fn check_health(&self) -> obs::HealthReport {
        self.health.check(&self.timeseries, Some(&self.level_table()), &self.observer)
    }
}

impl SchemeReport {
    /// Gather a report from a live store.
    pub fn collect(db: &TieredDb) -> Result<SchemeReport> {
        Self::collect_from(&db.stats_source())
    }

    /// Gather a report through detached [`StatsSource`] handles — the
    /// collection path shared by [`collect`](Self::collect), the
    /// background sampler, and the HTTP exporter.
    pub fn collect_from(source: &StatsSource) -> Result<SchemeReport> {
        let stats = &source.engine_stats;
        let router = &source.router;
        let local_bytes = source.env.total_bytes()?;
        let cloud_bytes = source.cloud.total_bytes()?;
        let cost =
            source.cloud.cost_tracker().report(source.cloud.cost_model(), cloud_bytes, local_bytes);
        let (cache, cache_metadata_bytes, cache_backed_bytes) = match router.cache() {
            Some(cache) => (Some(cache.stats()), cache.metadata_bytes(), cache.data_bytes()),
            None => (None, 0, 0),
        };
        let cloud_snapshot = source.cloud.stats().snapshot();
        let retry = source.cloud.retrier().snapshot();
        let prefetch_issued = source.prefetcher.as_ref().map(|p| p.issued()).unwrap_or(0);
        let prefetch_useful = source.block_cache.as_ref().map(|c| c.prefetch_useful()).unwrap_or(0);
        let prefetch_wasted_blocks =
            source.block_cache.as_ref().map(|c| c.prefetch_wasted()).unwrap_or(0);
        // The engine's WAL queues and the tiered eWAL queues each keep
        // their own counters; exactly one side sees traffic per mode, and
        // summing covers both without caring which.
        let engine_gc = &source.engine_gc;
        let mut group_commits = engine_gc.group_commits.load(Ordering::Relaxed);
        let mut group_commit_batches = engine_gc.group_commit_batches.load(Ordering::Relaxed);
        let mut writer_shard_conflicts = engine_gc.writer_shard_conflicts.load(Ordering::Relaxed);
        if let Some(ewal_gc) = &source.ewal_gc {
            group_commits += ewal_gc.group_commits.load(Ordering::Relaxed);
            group_commit_batches += ewal_gc.group_commit_batches.load(Ordering::Relaxed);
            writer_shard_conflicts += ewal_gc.writer_shard_conflicts.load(Ordering::Relaxed);
        }
        let heat = source
            .observer
            .is_enabled()
            .then(|| source.observer.heat().snapshot(HEAT_TOP_N, cache_backed_bytes));
        Ok(SchemeReport {
            engine_writes: stats.writes.load(Ordering::Relaxed),
            engine_gets: stats.gets.load(Ordering::Relaxed),
            engine_flushes: stats.flushes.load(Ordering::Relaxed),
            flush_bytes: stats.flush_bytes.load(Ordering::Relaxed),
            engine_compactions: stats.compactions.load(Ordering::Relaxed),
            compact_bytes_in: stats.compact_bytes_in.load(Ordering::Relaxed),
            compact_bytes_out: stats.compact_bytes_out.load(Ordering::Relaxed),
            stall_ns: stats.stall_ns.load(Ordering::Relaxed),
            flush_retries: stats.flush_retries.load(Ordering::Relaxed),
            subcompactions: stats.subcompactions.load(Ordering::Relaxed),
            compaction_parallelism_peak: stats.compaction_parallelism_peak.load(Ordering::Relaxed),
            imm_queue_peak: stats.imm_queue_peak.load(Ordering::Relaxed),
            group_commits,
            group_commit_batches,
            writer_shard_conflicts,
            coalesced_gets: cloud_snapshot.coalesced_gets,
            requests_saved: cloud_snapshot.requests_saved,
            cloud: cloud_snapshot,
            cost,
            local_bytes,
            cloud_bytes,
            uploads: router.stats().uploads.load(Ordering::Relaxed),
            promotions: router.stats().promotions.load(Ordering::Relaxed),
            demotions: router.stats().demotions.load(Ordering::Relaxed),
            promotion_bytes: router.stats().promotion_bytes.load(Ordering::Relaxed),
            cache,
            cache_metadata_bytes,
            prefetch_issued,
            prefetch_useful,
            prefetch_wasted_blocks,
            filter_decode_failures: source.observer.filter_decode_failures(),
            retry_attempts: retry.attempts,
            retry_exhausted: retry.exhausted,
            retry_recovered: retry.recovered,
            perf: {
                let totals = source.observer.perf_totals();
                (!totals.is_empty()).then_some(totals)
            },
            perf_ops: source.observer.perf_ops(),
            heat,
            levels: Some(source.level_table()),
        })
    }

    /// Fraction of capacity on the local tier.
    pub fn local_fraction(&self) -> f64 {
        let total = self.local_bytes + self.cloud_bytes;
        if total == 0 {
            0.0
        } else {
            self.local_bytes as f64 / total as f64
        }
    }

    /// Serialize the report for the benchmark result files
    /// (hand-rolled JSON; see [`obs::json`] for why serde's runtime is
    /// not in the dependency set).
    pub fn to_json(&self) -> String {
        use obs::json::fmt_f64;
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"engine_writes\":{},\"engine_gets\":{},\"engine_flushes\":{},\"flush_bytes\":{},\
             \"engine_compactions\":{},\"compact_bytes_in\":{},\"compact_bytes_out\":{},\
             \"stall_ns\":{},\"flush_retries\":{},\"subcompactions\":{},\
             \"compaction_parallelism_peak\":{},\"imm_queue_peak\":{},\
             \"group_commits\":{},\"group_commit_batches\":{},\"writer_shard_conflicts\":{}",
            self.engine_writes,
            self.engine_gets,
            self.engine_flushes,
            self.flush_bytes,
            self.engine_compactions,
            self.compact_bytes_in,
            self.compact_bytes_out,
            self.stall_ns,
            self.flush_retries,
            self.subcompactions,
            self.compaction_parallelism_peak,
            self.imm_queue_peak,
            self.group_commits,
            self.group_commit_batches,
            self.writer_shard_conflicts,
        );
        let _ = write!(
            out,
            ",\"cloud\":{{\"reads\":{},\"writes\":{},\"deletes\":{},\"bytes_read\":{},\
             \"bytes_written\":{},\"simulated_wait_ns\":{},\"coalesced_gets\":{},\
             \"requests_saved\":{}}}",
            self.cloud.reads,
            self.cloud.writes,
            self.cloud.deletes,
            self.cloud.bytes_read,
            self.cloud.bytes_written,
            self.cloud.simulated_wait_ns,
            self.cloud.coalesced_gets,
            self.cloud.requests_saved,
        );
        let _ = write!(
            out,
            ",\"cost\":{{\"puts\":{},\"gets\":{},\"egress_bytes\":{},\"request_cost\":{},\
             \"egress_cost\":{},\"cloud_capacity_cost\":{},\"local_capacity_cost\":{},\
             \"monthly_total\":{}}}",
            self.cost.puts,
            self.cost.gets,
            self.cost.egress_bytes,
            fmt_f64(self.cost.request_cost),
            fmt_f64(self.cost.egress_cost),
            fmt_f64(self.cost.cloud_capacity_cost),
            fmt_f64(self.cost.local_capacity_cost),
            fmt_f64(self.cost.monthly_total()),
        );
        let _ = write!(
            out,
            ",\"local_bytes\":{},\"cloud_bytes\":{},\"local_fraction\":{},\"uploads\":{},\
             \"promotions\":{},\"demotions\":{},\"promotion_bytes\":{}",
            self.local_bytes,
            self.cloud_bytes,
            fmt_f64(self.local_fraction()),
            self.uploads,
            self.promotions,
            self.demotions,
            self.promotion_bytes,
        );
        match &self.cache {
            Some(c) => {
                let _ = write!(
                    out,
                    ",\"cache\":{{\"hits\":{},\"misses\":{},\"inserts\":{},\
                     \"admission_rejects\":{},\"oversize_rejects\":{},\"evicted_extents\":{},\
                     \"invalidations\":{},\"invalidation_steps\":{}}}",
                    c.hits,
                    c.misses,
                    c.inserts,
                    c.admission_rejects,
                    c.oversize_rejects,
                    c.evicted_extents,
                    c.invalidations,
                    c.invalidation_steps,
                );
            }
            None => out.push_str(",\"cache\":null"),
        }
        let _ = write!(
            out,
            ",\"cache_metadata_bytes\":{},\"prefetch_issued\":{},\"prefetch_useful\":{},\
             \"prefetch_wasted_blocks\":{},\"filter_decode_failures\":{},\
             \"coalesced_gets\":{},\"requests_saved\":{},\"retry_attempts\":{},\
             \"retry_exhausted\":{},\"retry_recovered\":{}",
            self.cache_metadata_bytes,
            self.prefetch_issued,
            self.prefetch_useful,
            self.prefetch_wasted_blocks,
            self.filter_decode_failures,
            self.coalesced_gets,
            self.requests_saved,
            self.retry_attempts,
            self.retry_exhausted,
            self.retry_recovered,
        );
        match &self.perf {
            Some(perf) => {
                let _ = write!(out, ",\"perf\":{},\"perf_ops\":{}", perf.to_json(), self.perf_ops);
            }
            None => out.push_str(",\"perf\":null,\"perf_ops\":0"),
        }
        match &self.heat {
            Some(heat) => {
                let _ = write!(out, ",\"heat\":{}", heat.to_json());
            }
            None => out.push_str(",\"heat\":null"),
        }
        match &self.levels {
            Some(levels) => {
                let _ = write!(out, ",\"levels\":{}", levels.to_json());
            }
            None => out.push_str(",\"levels\":null"),
        }
        out.push('}');
        out
    }

    /// Fold the report into `registry` as counters and gauges, so every
    /// export surface (stats string, JSON, Prometheus) carries the
    /// scheme-level context next to the latency histograms.
    pub fn fold_into(&self, registry: &mut obs::MetricsRegistry) {
        registry
            .counter("engine_writes", self.engine_writes)
            .counter("engine_gets", self.engine_gets)
            .counter("engine_flushes", self.engine_flushes)
            .counter("flush_bytes", self.flush_bytes)
            .counter("engine_compactions", self.engine_compactions)
            .counter("compact_bytes_in", self.compact_bytes_in)
            .counter("compact_bytes_out", self.compact_bytes_out)
            .counter("stall_ns", self.stall_ns)
            .counter("flush_retries", self.flush_retries)
            .counter("subcompactions", self.subcompactions)
            .counter("imm_queue_peak", self.imm_queue_peak)
            .counter("group_commits", self.group_commits)
            .counter("group_commit_batches", self.group_commit_batches)
            .counter("writer_shard_conflicts", self.writer_shard_conflicts)
            .gauge("compaction_parallelism", self.compaction_parallelism_peak as f64)
            .counter("cloud_reads", self.cloud.reads)
            .counter("cloud_writes", self.cloud.writes)
            .counter("cloud_bytes_read", self.cloud.bytes_read)
            .counter("cloud_bytes_written", self.cloud.bytes_written)
            .counter("cloud_coalesced_gets", self.coalesced_gets)
            .counter("cloud_requests_saved", self.requests_saved)
            .counter("uploads", self.uploads)
            .counter("promotions", self.promotions)
            .counter("demotions", self.demotions)
            .counter("promotion_bytes", self.promotion_bytes)
            .counter("prefetch_issued", self.prefetch_issued)
            .counter("prefetch_useful", self.prefetch_useful)
            .counter("prefetch_wasted_blocks", self.prefetch_wasted_blocks)
            .counter("filter_decode_failures", self.filter_decode_failures)
            .counter("retry_attempts", self.retry_attempts)
            .counter("retry_exhausted", self.retry_exhausted)
            .counter("retry_recovered", self.retry_recovered)
            .gauge("local_bytes", self.local_bytes as f64)
            .gauge("cloud_bytes", self.cloud_bytes as f64)
            .gauge("local_fraction", self.local_fraction())
            .gauge("cache_metadata_bytes", self.cache_metadata_bytes as f64)
            .gauge("monthly_cost_dollars", self.cost.monthly_total())
            // Cumulative per-request spend (PUT/GET charges + egress) in
            // micro-dollars: a counter, so the doctor can rate it.
            .counter(
                "cost_microdollars",
                ((self.cost.request_cost + self.cost.egress_cost) * 1e6) as u64,
            );
        if let Some(cache) = &self.cache {
            registry
                .counter("cache_hits", cache.hits)
                .counter("cache_misses", cache.misses)
                .counter("cache_inserts", cache.inserts)
                .counter("cache_evicted_extents", cache.evicted_extents)
                .counter("cache_invalidations", cache.invalidations);
            let lookups = cache.hits + cache.misses;
            registry.gauge(
                "cache_hit_ratio",
                if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 },
            );
        }
        if let Some(heat) = &self.heat {
            registry.attach_heat(heat.clone());
        }
        if let Some(levels) = &self.levels {
            registry
                .gauge("compaction_debt_bytes", levels.compaction_debt_bytes as f64)
                .gauge("write_amp", levels.write_amp())
                .attach_levels(levels.clone());
        }
    }
}
