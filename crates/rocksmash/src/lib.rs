//! **RocksMash** — a fast and efficient LSM-tree store that integrates
//! local storage with cloud storage (reproduction of Wan et al.).
//!
//! The store combines three designs on top of the `lsm` engine:
//!
//! 1. **Tiered placement** ([`placement`], [`router`]): the write-ahead
//!    log, MANIFEST, and the hot upper levels of the LSM tree live on fast
//!    local storage; cold deep levels are uploaded to an object store.
//!    Compaction output level determines tier, so data migrates to the
//!    cloud as it ages — no separate reorganization pass.
//! 2. **LSM-aware persistent cache** (crate `mashcache`, wired in by
//!    [`router`]): popular blocks of cloud-resident SSTables are cached on
//!    local storage with a compaction-aware extent layout and packed
//!    metadata.
//! 3. **Extended WAL** ([`ewal`], [`recovery`]): writes are logged to a
//!    partitioned, sequence-stamped eWAL on local storage; recovery decodes
//!    all partitions in parallel and replays in sequence order.
//! 4. **Heat-driven promotion** ([`promote`], [`placement`]): decayed
//!    per-SST heat scores feed a pluggable [`TierPolicy`]; a background
//!    pass pulls hot cloud-resident tables back to local storage under a
//!    byte budget, demoting the coldest local tables when over it.
//!
//! [`TieredDb`] is the user-facing store; [`baselines`] builds the
//! comparison schemes (local-only, cloud-only, naive hybrid) on the same
//! substrate so benchmarks differ only in the design under test.
//!
//! ```
//! use std::sync::Arc;
//! use rocksmash::{TieredConfig, TieredDb};
//! use storage::{Env, MemEnv};
//!
//! // In-memory local tier for the example; production uses LocalEnv.
//! let env: Arc<dyn Env> = Arc::new(MemEnv::new());
//! let config = TieredConfig::small_for_tests();
//! let db = TieredDb::open(env, config)?;
//!
//! db.put(b"user:1", b"alice")?;
//! assert_eq!(db.get(b"user:1")?, Some(b"alice".to_vec()));
//!
//! let snap = db.snapshot();
//! db.put(b"user:1", b"bob")?;
//! assert_eq!(db.get_at(b"user:1", &snap)?, Some(b"alice".to_vec()));
//!
//! db.flush()?;
//! let report = db.report()?;
//! assert!(report.local_bytes > 0);
//! db.close()?;
//! # Ok::<(), lsm::Error>(())
//! ```

pub mod baselines;
pub mod config;
pub mod ewal;
pub mod migrate;
pub mod placement;
pub mod promote;
pub mod recovery;
pub mod router;
pub mod stats;
pub mod tiered;

pub use baselines::Scheme;
pub use config::{CacheKind, PromotionConfig, TieredConfig};
pub use migrate::{migrate_placement, MigrationReport};
pub use placement::{FileState, HeatAware, PlacementPlan, PlacementPolicy, TierPolicy};
pub use promote::{PromotionPass, PromotionReport};
pub use stats::{SchemeReport, StatsSource};
pub use tiered::TieredDb;
