//! Parallel eWAL recovery.
//!
//! Because every eWAL record carries its global sequence stamp, partition
//! files can be *rebuilt* independently and concurrently: each partition's
//! records are decoded and inserted into a private memtable using their
//! original sequence numbers. Cross-partition ordering needs no merge step
//! — the engine's multi-version read paths already resolve versions by
//! sequence. The rebuilt memtables are then ingested as L0 tables.
//!
//! Recovery therefore has a wide parallel phase (read + CRC + decode +
//! memtable build, one task per partition file) and a short serial phase
//! (sequential L0 table writes), which is where the paper's recovery
//! speedup comes from (experiment E6).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm::batch::BatchOp;
use lsm::memtable::MemTable;
use lsm::wal::LogReader;
use lsm::{Db, Result, ValueType, WriteBatch};
use rayon::prelude::*;
use storage::Env;

use crate::ewal::{decode_batch, list_partition_files};

/// One rebuilt partition: a memtable holding its records at their original
/// sequence numbers.
pub struct RebuiltPartition {
    /// The rebuilt memtable.
    pub mem: Arc<MemTable>,
    /// Highest sequence number the partition contained.
    pub max_sequence: u64,
    /// Operations decoded.
    pub ops: u64,
    /// Log bytes scanned.
    pub bytes: u64,
}

/// Outcome of an eWAL recovery pass.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Partition files read.
    pub files: usize,
    /// Log bytes scanned.
    pub bytes: u64,
    /// Operations recovered.
    pub recovered_ops: u64,
    /// Wall-clock of the parallelizable phase (read, checksum, decode,
    /// memtable rebuild).
    pub decode_time: Duration,
    /// Wall-clock of the serial ingest phase (L0 table writes).
    pub apply_time: Duration,
}

impl RecoveryReport {
    /// Total recovery wall-clock.
    pub fn total_time(&self) -> Duration {
        self.decode_time + self.apply_time
    }

    /// Total operations recovered.
    pub fn ops(&self) -> u64 {
        self.recovered_ops
    }
}

fn rebuild_one(env: &Arc<dyn Env>, name: &str) -> Result<RebuiltPartition> {
    let file = env.open_random(name)?;
    let bytes = file.len();
    let mut reader = LogReader::new(file);
    let mem = Arc::new(MemTable::new());
    let mut ops = 0u64;
    let mut max_sequence = 0u64;
    while let Some(record) = reader.read_record()? {
        let batch = decode_batch(&record)?;
        let base = batch.sequence();
        for (seq, op) in (base..).zip(batch.iter()) {
            match op {
                BatchOp::Put(k, v) => mem.insert(seq, ValueType::Value, k, v),
                BatchOp::Delete(k) => mem.insert(seq, ValueType::Deletion, k, &[]),
            }
            max_sequence = max_sequence.max(seq);
            ops += 1;
        }
    }
    Ok(RebuiltPartition { mem, max_sequence, ops, bytes })
}

/// Rebuild every partition file on `env` into memtables. With `parallel`,
/// one rayon task per file on a pool sized to the file count — partition
/// replay is I/O-bound on real devices, so the pool must be wide enough to
/// keep every partition's reads in flight even on few cores; otherwise
/// sequential (the conventional WAL replay the paper compares against).
pub fn rebuild_partitions(env: &Arc<dyn Env>, parallel: bool) -> Result<Vec<RebuiltPartition>> {
    let files = list_partition_files(env)?;
    if parallel && files.len() > 1 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(files.len().min(16))
            .build()
            .map_err(|e| lsm::Error::InvalidArgument(format!("recovery pool: {e}")))?;
        pool.install(|| files.par_iter().map(|name| rebuild_one(env, name)).collect())
    } else {
        files.iter().map(|name| rebuild_one(env, name)).collect()
    }
}

/// Full recovery: rebuild partitions (optionally parallel), then ingest
/// the memtables into `db` as L0 tables.
pub fn recover_into(env: &Arc<dyn Env>, db: &Db, parallel: bool) -> Result<RecoveryReport> {
    let started = Instant::now();
    let partitions = rebuild_partitions(env, parallel)?;
    let decode_time = started.elapsed();
    let files = partitions.len();
    let bytes = partitions.iter().map(|p| p.bytes).sum();
    let recovered_ops = partitions.iter().map(|p| p.ops).sum();
    let ingest_started = Instant::now();
    for partition in &partitions {
        db.ingest_recovered_memtable(&partition.mem, partition.max_sequence)?;
    }
    Ok(RecoveryReport {
        files,
        bytes,
        recovered_ops,
        decode_time,
        apply_time: ingest_started.elapsed(),
    })
}

/// Decode every record (without rebuilding memtables) and return the
/// batches in global sequence order. Used by tests and tooling that needs
/// the raw stream.
pub fn decode_all_sorted(env: &Arc<dyn Env>, parallel: bool) -> Result<Vec<WriteBatch>> {
    let files = list_partition_files(env)?;
    let decode_one = |name: &String| -> Result<Vec<WriteBatch>> {
        let file = env.open_random(name)?;
        let mut reader = LogReader::new(file);
        let mut batches = Vec::new();
        while let Some(record) = reader.read_record()? {
            batches.push(decode_batch(&record)?);
        }
        Ok(batches)
    };
    let per_file: Vec<Vec<WriteBatch>> = if parallel {
        files.par_iter().map(decode_one).collect::<Result<Vec<_>>>()?
    } else {
        files.iter().map(decode_one).collect::<Result<Vec<_>>>()?
    };
    let mut batches: Vec<WriteBatch> = per_file.into_iter().flatten().collect();
    batches.sort_by_key(|b| b.sequence());
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewal::EWalWriter;
    use lsm::Options;
    use storage::MemEnv;

    fn stamped(seq: u64, k: String, v: String) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(k.as_bytes(), v.as_bytes());
        b.set_sequence(seq);
        b
    }

    fn write_ewal(env: &Arc<dyn Env>, partitions: usize, n: u64) {
        let w = EWalWriter::create(env, 1, partitions).unwrap();
        for i in 0..n {
            w.append(&stamped(i + 1, format!("key{i:05}"), format!("val{i}"))).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn decode_all_sorted_restores_sequence_order() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        write_ewal(&env, 4, 100);
        for parallel in [false, true] {
            let batches = decode_all_sorted(&env, parallel).unwrap();
            assert_eq!(batches.len(), 100);
            for (i, b) in batches.iter().enumerate() {
                assert_eq!(b.sequence(), i as u64 + 1, "parallel={parallel}");
            }
        }
    }

    #[test]
    fn rebuild_covers_every_op() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        write_ewal(&env, 3, 90);
        let parts = rebuild_partitions(&env, true).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.ops).sum::<u64>(), 90);
        assert_eq!(parts.iter().map(|p| p.max_sequence).max(), Some(90));
    }

    #[test]
    fn recover_into_db_restores_data() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        write_ewal(&env, 3, 50);
        let db_env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Db::open(db_env, Options::small_for_tests()).unwrap();
        let report = recover_into(&env, &db, true).unwrap();
        assert_eq!(report.ops(), 50);
        assert_eq!(report.files, 3);
        assert_eq!(db.last_sequence(), 50);
        for i in 0..50 {
            assert_eq!(
                db.get(format!("key{i:05}").as_bytes()).unwrap(),
                Some(format!("val{i}").into_bytes())
            );
        }
        db.close().unwrap();
    }

    #[test]
    fn replay_order_wins_for_overwrites_across_partitions() {
        // Same key written twice; the records land in different partitions
        // and therefore different L0 tables. The higher sequence must win
        // even though both tables overlap.
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let w = EWalWriter::create(&env, 1, 2).unwrap();
        w.append(&stamped(1, "k".into(), "old".into())).unwrap();
        w.append(&stamped(2, "k".into(), "new".into())).unwrap();
        w.append(&stamped(3, "j".into(), "x".into())).unwrap();
        w.append(&stamped(4, "k".into(), "newest".into())).unwrap();
        w.finish().unwrap();
        let db =
            Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        recover_into(&env, &db, true).unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"newest".to_vec()));
        assert_eq!(db.get(b"j").unwrap(), Some(b"x".to_vec()));
        // Writes after recovery must shadow recovered data.
        db.put(b"k", b"post").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"post".to_vec()));
        db.close().unwrap();
    }

    #[test]
    fn deletions_recover_across_partitions() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let w = EWalWriter::create(&env, 2, 1).unwrap();
        w.append(&stamped(1, "k".into(), "v".into())).unwrap();
        let mut del = WriteBatch::new();
        del.delete(b"k");
        del.set_sequence(2);
        w.append(&del).unwrap();
        w.finish().unwrap();
        let db =
            Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        recover_into(&env, &db, true).unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.close().unwrap();
    }

    #[test]
    fn empty_ewal_recovers_nothing() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db =
            Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        let report = recover_into(&env, &db, true).unwrap();
        assert_eq!(report.ops(), 0);
        assert_eq!(report.files, 0);
        db.close().unwrap();
    }

    #[test]
    fn multi_generation_recovery_merges_all() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let w1 = EWalWriter::create(&env, 1, 2).unwrap();
        w1.append(&stamped(1, "a".into(), "1".into())).unwrap();
        w1.finish().unwrap();
        let w2 = EWalWriter::create(&env, 2, 2).unwrap();
        w2.append(&stamped(2, "b".into(), "2".into())).unwrap();
        w2.append(&stamped(3, "a".into(), "3".into())).unwrap();
        w2.finish().unwrap();
        let db =
            Db::open(Arc::new(MemEnv::new()) as Arc<dyn Env>, Options::small_for_tests()).unwrap();
        let report = recover_into(&env, &db, false).unwrap();
        assert_eq!(report.ops(), 3);
        assert_eq!(db.get(b"a").unwrap(), Some(b"3".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        db.close().unwrap();
    }
}
