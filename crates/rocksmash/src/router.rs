//! The tiered [`FileRouter`]: places finished SSTables on their tier and
//! serves reads back through the persistent cache.
//!
//! This is the integration point that corresponds to the paper's changes
//! inside RocksDB: the engine builds every table locally; `publish_table`
//! uploads cold-level tables to the object store and drops the local copy;
//! `open_table` returns either the local file or a cache-fronted view of
//! the cloud object; `delete_table` removes the file from its tier and
//! invalidates its cache extents in O(extents).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lsm::db::FileRouter;
use lsm::version::sst_name;
use mashcache::cache::PersistentBlockCache;
use parking_lot::Mutex;
use storage::{CloudStore, Env, ObjectStore, RandomAccessFile, Result, StorageError};

use crate::placement::{PlacementPolicy, Tier, TierPolicy};

/// Object-store key for a table file.
pub fn cloud_sst_key(number: u64) -> String {
    format!("sst/{number:06}.sst")
}

/// Counters for tier traffic.
#[derive(Debug, Default)]
pub struct RouterStats {
    /// Tables uploaded to the cloud tier.
    pub uploads: AtomicU64,
    /// Bytes uploaded.
    pub upload_bytes: AtomicU64,
    /// Block reads served from the persistent cache.
    pub cache_hits: AtomicU64,
    /// Block reads that had to touch the cloud.
    pub cloud_reads: AtomicU64,
    /// Hot SSTs pulled back from the cloud to local storage.
    pub promotions: AtomicU64,
    /// Cold local SSTs pushed to the cloud by the promotion budget.
    pub demotions: AtomicU64,
    /// Bytes moved across tiers by promotion passes (both directions).
    pub promotion_bytes: AtomicU64,
}

/// Router implementing level-based tier placement with a persistent cache
/// in front of the cloud tier.
pub struct TieredRouter {
    cloud: CloudStore,
    /// The tier policy in force: a bare [`PlacementPolicy`] for the static
    /// level split, or [`crate::HeatAware`] when promotion is enabled.
    policy: parking_lot::RwLock<Arc<dyn TierPolicy>>,
    cache: Option<Arc<dyn PersistentBlockCache>>,
    /// Level each file was placed at (for cache eviction priority).
    levels: Mutex<HashMap<u64, usize>>,
    stats: Arc<RouterStats>,
    /// Set once by the tiered store; uploads then surface as `Upload`
    /// journal events with their duration.
    observer: std::sync::OnceLock<Arc<obs::Observer>>,
}

impl TieredRouter {
    /// Build a router over the given cloud store and policy.
    pub fn new(
        cloud: CloudStore,
        placement: PlacementPolicy,
        cache: Option<Arc<dyn PersistentBlockCache>>,
    ) -> Self {
        TieredRouter {
            cloud,
            policy: parking_lot::RwLock::new(Arc::new(placement)),
            cache,
            levels: Mutex::new(HashMap::new()),
            stats: Arc::new(RouterStats::default()),
            observer: std::sync::OnceLock::new(),
        }
    }

    /// Attach a latency observer; table migrations to the cloud tier then
    /// publish `Upload` journal events. The first attach wins.
    pub fn attach_observer(&self, obs: Arc<obs::Observer>) {
        let _ = self.observer.set(obs);
    }

    /// Traffic counters.
    pub fn stats(&self) -> &Arc<RouterStats> {
        &self.stats
    }

    /// The persistent cache, if one is configured.
    pub fn cache(&self) -> Option<&Arc<dyn PersistentBlockCache>> {
        self.cache.as_ref()
    }

    /// The cloud store this router uploads to.
    pub fn cloud(&self) -> &CloudStore {
        &self.cloud
    }

    /// The static level split of the policy currently in force.
    pub fn placement(&self) -> PlacementPolicy {
        self.policy.read().static_split()
    }

    /// Swap in a static placement policy; governs every future
    /// publish/open.
    pub fn set_placement(&self, placement: PlacementPolicy) {
        self.set_policy(Arc::new(placement));
    }

    /// The tier policy currently in force.
    pub fn policy(&self) -> Arc<dyn TierPolicy> {
        Arc::clone(&self.policy.read())
    }

    /// Swap the tier policy; governs every future publish/open and the
    /// plans computed by promotion passes.
    pub fn set_policy(&self, policy: Arc<dyn TierPolicy>) {
        *self.policy.write() = policy;
    }

    /// Local-tier SST bytes as tracked by the residency ledger; 0 until an
    /// enabled observer is attached (budget-aware placement then degrades
    /// to the static split).
    pub fn local_resident_bytes(&self) -> u64 {
        self.observer.get().map(|o| o.heat().residency().snapshot(0).local_bytes).unwrap_or(0)
    }

    /// Delete cloud objects left behind by a previous incarnation: objects
    /// numbered below `floor` (i.e. created before this recovery) that the
    /// recovered MANIFEST does not reference. Objects at or above `floor`
    /// belong to the current incarnation and are governed by the engine's
    /// deferred-deletion machinery, so a concurrently running compaction
    /// can never lose a freshly uploaded table to this sweep. Returns the
    /// number of objects removed.
    pub fn gc_cloud(&self, live: &std::collections::BTreeSet<u64>, floor: u64) -> Result<usize> {
        let mut removed = 0;
        for key in self.cloud.list("sst/")? {
            let number: Option<u64> = key
                .strip_prefix("sst/")
                .and_then(|s| s.strip_suffix(".sst"))
                .and_then(|s| s.parse().ok());
            if let Some(number) = number {
                if number < floor && !live.contains(&number) {
                    let _ = self.cloud.delete(&key);
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

impl FileRouter for TieredRouter {
    fn publish_table(&self, env: &dyn Env, number: u64, level: usize) -> Result<()> {
        self.levels.lock().insert(number, level);
        let bytes = env.size(&sst_name(number)).unwrap_or(0);
        let tier = self.policy.read().place_new(level, bytes, self.local_resident_bytes());
        match tier {
            Tier::Local => {
                if let Some(o) = self.observer.get() {
                    o.set_residency(number, bytes, obs::ResidencyTier::Local);
                }
                Ok(())
            }
            Tier::Cloud => {
                // Child of the flush/compaction span that produced the
                // table; absent a trace this is a no-op.
                let _span = self.observer.get().and_then(|o| o.child_span("sst_upload"));
                let name = sst_name(number);
                let data = env.read_all(&name)?;
                let started = std::time::Instant::now();
                // Crash site: before the upload, so a "crash" leaves the
                // table local-only and the version edit unapplied — the
                // flush/compaction fails as a unit and recovery rebuilds it.
                // Transient cloud faults below this point are absorbed by
                // the store's RetryPolicy.
                storage::failpoint::fail_point("sst_upload")?;
                self.cloud.put(&cloud_sst_key(number), &data)?;
                env.delete(&name)?;
                self.stats.uploads.fetch_add(1, Ordering::Relaxed);
                self.stats.upload_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
                if let Some(o) = self.observer.get() {
                    o.event(obs::EventKind::Upload {
                        file: number,
                        bytes: data.len() as u64,
                        dur_ns: started.elapsed().as_nanos() as u64,
                    });
                    o.set_residency(number, data.len() as u64, obs::ResidencyTier::Cloud);
                }
                Ok(())
            }
        }
    }

    fn open_table(&self, env: &dyn Env, number: u64) -> Result<Arc<dyn RandomAccessFile>> {
        let name = sst_name(number);
        if env.exists(&name)? {
            return env.open_random(&name);
        }
        let object = self.cloud.open_object(&cloud_sst_key(number))?;
        let level = self
            .levels
            .lock()
            .get(&number)
            .copied()
            .unwrap_or(self.policy.read().static_split().cloud_from_level);
        Ok(Arc::new(CachedCloudFile {
            file: number,
            level,
            inner: object,
            cache: self.cache.clone(),
            stats: Arc::clone(&self.stats),
            observer: self.observer.get().cloned(),
        }))
    }

    fn delete_table(&self, env: &dyn Env, number: u64) -> Result<()> {
        self.delete_tables(env, std::slice::from_ref(&number))
    }

    fn delete_tables(&self, env: &dyn Env, numbers: &[u64]) -> Result<()> {
        {
            let mut levels = self.levels.lock();
            for number in numbers {
                levels.remove(number);
            }
        }
        // Deleted tables stop occupying heat slots and residency rows.
        if let Some(o) = self.observer.get() {
            o.forget_tables(numbers);
        }
        // One batched invalidation: the cache drops every file's extents
        // under a single lock acquisition instead of one per file.
        if let Some(cache) = &self.cache {
            cache.invalidate_files(numbers);
        }
        let mut first_err = None;
        for &number in numbers {
            let result = (|| {
                let name = sst_name(number);
                if env.exists(&name)? {
                    env.delete(&name)
                } else {
                    match self.cloud.delete(&cloud_sst_key(number)) {
                        Ok(()) | Err(StorageError::NotFound(_)) => Ok(()),
                        Err(e) => Err(e),
                    }
                }
            })();
            if let Err(e) = result {
                // Keep going: every file gets a deletion attempt, the
                // first failure is reported.
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Random-access view of a cloud object with the persistent cache in the
/// read path. Each `read_at` is one block fetch: the table reader always
/// requests whole blocks (contents + trailer), so the block's file offset
/// is a stable cache key.
struct CachedCloudFile {
    file: u64,
    level: usize,
    inner: Arc<dyn RandomAccessFile>,
    cache: Option<Arc<dyn PersistentBlockCache>>,
    stats: Arc<RouterStats>,
    /// Attributes cache hits and billed GETs to the serving SST in the
    /// heat tracker (scores themselves come from the lsm read path).
    observer: Option<Arc<obs::Observer>>,
}

impl CachedCloudFile {
    /// Vectored read with the persistent cache in the path: hits are
    /// answered locally, misses are fetched together through the inner
    /// file's coalescing `read_ranges`, and the fetched blocks are admitted
    /// — at low priority when `prefetched` (speculative readahead must not
    /// displace demand-hot blocks).
    fn ranged_read(&self, ranges: &[(u64, usize)], prefetched: bool) -> Result<Vec<Vec<u8>>> {
        let mut out: Vec<Option<Vec<u8>>> = vec![None; ranges.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        if let Some(cache) = &self.cache {
            for (i, &(offset, len)) in ranges.iter().enumerate() {
                match cache.get(self.file, offset) {
                    Some(data) if data.len() >= len => {
                        out[i] = Some(data[..len].to_vec());
                        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = &self.observer {
                            o.record_cache_hit_for(self.file);
                        }
                    }
                    _ => miss_idx.push(i),
                }
            }
        } else {
            miss_idx.extend(0..ranges.len());
        }
        if !miss_idx.is_empty() {
            let miss_ranges: Vec<(u64, usize)> = miss_idx.iter().map(|&i| ranges[i]).collect();
            let fetched = if prefetched {
                self.inner.prefetch_ranges(&miss_ranges)?
            } else {
                self.inner.read_ranges(&miss_ranges)?
            };
            self.stats.cloud_reads.fetch_add(miss_idx.len() as u64, Ordering::Relaxed);
            if let Some(o) = &self.observer {
                let bytes: u64 = miss_ranges.iter().map(|&(_, len)| len as u64).sum();
                // One attribution per block read that touched the cloud,
                // matching `RouterStats::cloud_reads`; bytes are the sum
                // of the fetched ranges.
                for _ in 1..miss_idx.len() {
                    o.record_cloud_get_for(self.file, 0);
                }
                o.record_cloud_get_for(self.file, bytes);
            }
            for (&i, data) in miss_idx.iter().zip(fetched) {
                if let Some(cache) = &self.cache {
                    let offset = ranges[i].0;
                    if prefetched {
                        cache.put_prefetched(self.file, offset, &data, self.level);
                    } else {
                        cache.put(self.file, offset, &data, self.level);
                    }
                }
                out[i] = Some(data);
            }
        }
        Ok(out.into_iter().map(|o| o.expect("every range filled")).collect())
    }
}

impl RandomAccessFile for CachedCloudFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        if let Some(cache) = &self.cache {
            if let Some(data) = cache.get(self.file, offset) {
                if data.len() >= buf.len() {
                    buf.copy_from_slice(&data[..buf.len()]);
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &self.observer {
                        o.record_cache_hit_for(self.file);
                    }
                    return Ok(buf.len());
                }
                // Cached block shorter than the request (e.g. the caller
                // asks past EOF): fall through to the authoritative copy.
            }
        }
        let n = self.inner.read_at(offset, buf)?;
        self.stats.cloud_reads.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &self.observer {
            o.record_cloud_get_for(self.file, n as u64);
        }
        if let Some(cache) = &self.cache {
            cache.put(self.file, offset, &buf[..n], self.level);
        }
        Ok(n)
    }

    fn read_ranges(&self, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        self.ranged_read(ranges, false)
    }

    fn prefetch_ranges(&self, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        self.ranged_read(ranges, true)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mashcache::{CacheConfig, MashCache, MemCacheStorage};
    use storage::MemEnv;

    fn setup(cache: bool) -> (MemEnv, CloudStore, TieredRouter) {
        let env = MemEnv::new();
        let cloud = CloudStore::instant();
        let cache: Option<Arc<dyn PersistentBlockCache>> = if cache {
            Some(Arc::new(MashCache::new(
                Arc::new(MemCacheStorage::new(1 << 20)),
                CacheConfig { admission: false, ..CacheConfig::default() },
            )))
        } else {
            None
        };
        let router = TieredRouter::new(cloud.clone(), PlacementPolicy::rocksmash_default(), cache);
        (env, cloud, router)
    }

    #[test]
    fn hot_level_tables_stay_local() {
        let (env, cloud, router) = setup(false);
        env.write_all(&sst_name(7), b"table-bytes").unwrap();
        router.publish_table(&env, 7, 0).unwrap();
        assert!(env.exists(&sst_name(7)).unwrap());
        assert!(cloud.list("sst/").unwrap().is_empty());
        let f = router.open_table(&env, 7).unwrap();
        assert_eq!(f.read_exact_at(0, 11).unwrap(), b"table-bytes");
    }

    #[test]
    fn cold_level_tables_move_to_cloud() {
        let (env, cloud, router) = setup(false);
        env.write_all(&sst_name(9), b"cold-table").unwrap();
        router.publish_table(&env, 9, 3).unwrap();
        assert!(!env.exists(&sst_name(9)).unwrap(), "local copy must be dropped");
        assert_eq!(cloud.get(&cloud_sst_key(9)).unwrap(), b"cold-table");
        let f = router.open_table(&env, 9).unwrap();
        assert_eq!(f.read_exact_at(5, 5).unwrap(), b"table");
        assert_eq!(router.stats().uploads.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cloud_reads_fill_and_hit_the_cache() {
        let (env, cloud, router) = setup(true);
        env.write_all(&sst_name(5), &vec![7u8; 4096]).unwrap();
        router.publish_table(&env, 5, 4).unwrap();
        let f = router.open_table(&env, 5).unwrap();
        let before = cloud.stats().snapshot().reads;
        let _ = f.read_exact_at(0, 1024).unwrap();
        assert_eq!(cloud.stats().snapshot().reads, before + 1);
        // Second read of the same block: served by the cache.
        let _ = f.read_exact_at(0, 1024).unwrap();
        assert_eq!(cloud.stats().snapshot().reads, before + 1);
        assert_eq!(router.stats().cache_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn vectored_cloud_read_coalesces_and_fills_cache() {
        let (env, cloud, router) = setup(true);
        env.write_all(&sst_name(6), &vec![9u8; 8192]).unwrap();
        router.publish_table(&env, 6, 4).unwrap();
        let f = router.open_table(&env, 6).unwrap();
        let ranges: Vec<(u64, usize)> = (0..4u64).map(|i| (i * 1024, 1024)).collect();
        let before = cloud.stats().snapshot();
        let got = f.read_ranges(&ranges).unwrap();
        assert!(got.iter().all(|b| b.len() == 1024 && b.iter().all(|&x| x == 9)));
        let after = cloud.stats().snapshot();
        assert_eq!(after.reads - before.reads, 1, "4 adjacent ranges must be one billed GET");
        assert_eq!(after.requests_saved - before.requests_saved, 3);
        // Second pass: every range now comes out of the persistent cache.
        let again = f.read_ranges(&ranges).unwrap();
        assert_eq!(again, got);
        assert_eq!(cloud.stats().snapshot().reads, after.reads);
    }

    #[test]
    fn prefetch_ranges_fills_cache_for_later_demand_reads() {
        let (env, cloud, router) = setup(true);
        env.write_all(&sst_name(8), &vec![3u8; 4096]).unwrap();
        router.publish_table(&env, 8, 5).unwrap();
        let f = router.open_table(&env, 8).unwrap();
        let ranges = [(0u64, 1024usize), (1024, 1024)];
        f.prefetch_ranges(&ranges).unwrap();
        let after_prefetch = cloud.stats().snapshot().reads;
        // Demand reads of the prefetched blocks stay local.
        assert_eq!(f.read_exact_at(0, 1024).unwrap(), vec![3u8; 1024]);
        assert_eq!(f.read_exact_at(1024, 1024).unwrap(), vec![3u8; 1024]);
        assert_eq!(cloud.stats().snapshot().reads, after_prefetch);
    }

    #[test]
    fn delete_removes_from_the_right_tier_and_cache() {
        let (env, cloud, router) = setup(true);
        env.write_all(&sst_name(1), b"local").unwrap();
        router.publish_table(&env, 1, 0).unwrap();
        env.write_all(&sst_name(2), &vec![1u8; 2048]).unwrap();
        router.publish_table(&env, 2, 5).unwrap();
        // Warm the cache for file 2.
        let f = router.open_table(&env, 2).unwrap();
        let _ = f.read_exact_at(0, 512).unwrap();

        router.delete_table(&env, 1).unwrap();
        assert!(!env.exists(&sst_name(1)).unwrap());
        router.delete_table(&env, 2).unwrap();
        assert!(cloud.list("sst/").unwrap().is_empty());
        let cache = router.cache().unwrap();
        assert!(cache.get(2, 0).is_none(), "cache must be invalidated");
        assert!(cache.stats().invalidations >= 1);
    }

    #[test]
    fn gc_cloud_removes_orphans() {
        let (env, cloud, router) = setup(false);
        env.write_all(&sst_name(3), b"live").unwrap();
        router.publish_table(&env, 3, 3).unwrap();
        env.write_all(&sst_name(4), b"orphan").unwrap();
        router.publish_table(&env, 4, 3).unwrap();
        let live: std::collections::BTreeSet<u64> = [3u64].into_iter().collect();
        let removed = router.gc_cloud(&live, 1000).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(cloud.list("sst/").unwrap(), vec![cloud_sst_key(3)]);
    }

    #[test]
    fn open_missing_table_errors() {
        let (env, _cloud, router) = setup(false);
        assert!(router.open_table(&env, 404).is_err());
    }
}
