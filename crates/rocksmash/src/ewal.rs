//! The extended write-ahead log (paper pillar 3).
//!
//! The eWAL differs from the engine's single-stream WAL in two ways that
//! together enable fast parallel recovery:
//!
//! * **Partitioned**: records are spread over `P` independent log files —
//!   keyed by the write path's shard hash, so each partition is one
//!   shard's log stream — and recovery can read, checksum, and decode all
//!   partitions concurrently.
//! * **Sequence-stamped** (the "extended" metadata): every record is a
//!   [`WriteBatch`] carrying its global sequence number, so the partitions
//!   can be merged back into the exact original write order after parallel
//!   decoding — ordering lives in the record, not in file position.
//!
//! Because ordering lives in the records, partitions never need a common
//! lock: each one has its own mutex, and concurrent writers on different
//! partitions append (and fsync) fully in parallel. A partition tracks
//! whether it has unsynced appends, so a sync only fsyncs the partitions
//! that are actually dirty instead of all `P` files.
//!
//! Generations bound replay work: the writer rotates to a new generation
//! right before every memtable flush, and once the flush is durable all
//! older generations are deleted. Crash recovery therefore replays a
//! suffix of history in original order, which is idempotent over the
//! already-flushed prefix.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use lsm::wal::LogWriter;
use lsm::{Error, Result, WriteBatch};
use parking_lot::Mutex;
use storage::Env;

/// File name of one eWAL partition log.
pub fn ewal_name(generation: u64, partition: usize) -> String {
    format!("ewal/g{generation:06}-p{partition:03}.log")
}

/// Parse an eWAL file name back into (generation, partition).
pub fn parse_ewal_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("ewal/g")?;
    let (gen_str, part) = rest.split_once("-p")?;
    let part_str = part.strip_suffix(".log")?;
    Some((gen_str.parse().ok()?, part_str.parse().ok()?))
}

/// One partition's log stream plus its sync state.
struct PartitionLog {
    log: LogWriter,
    /// Appends since the last fsync. Cleared by [`EWalWriter::sync`] and
    /// [`EWalWriter::sync_partition`]; clean partitions are skipped.
    dirty: bool,
}

/// Appends sequence-stamped batches across partition logs.
///
/// Shared (`&self`) by concurrent writers: every partition carries its own
/// lock, so appends to different partitions proceed in parallel. Ordering
/// across partitions is carried by the sequence stamps, not file position.
pub struct EWalWriter {
    partitions: Vec<Mutex<PartitionLog>>,
    generation: u64,
    /// Round-robin cursor for callers with no shard affinity.
    next: AtomicUsize,
    bytes: AtomicU64,
}

impl EWalWriter {
    /// Create the partition logs of `generation`.
    pub fn create(env: &Arc<dyn Env>, generation: u64, partitions: usize) -> Result<EWalWriter> {
        assert!(partitions >= 1, "at least one partition");
        // Crash site: dying here (mid-rotation) must leave the previous
        // generation's writer and files untouched.
        storage::failpoint::fail_point("ewal_rotate").map_err(Error::from)?;
        let mut logs = Vec::with_capacity(partitions);
        for p in 0..partitions {
            logs.push(Mutex::new(PartitionLog {
                log: LogWriter::new(env.new_writable(&ewal_name(generation, p))?),
                dirty: false,
            }));
        }
        Ok(EWalWriter {
            partitions: logs,
            generation,
            next: AtomicUsize::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Generation this writer appends to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of partition log streams.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Bytes appended across all partitions.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Append one batch to `partition`'s log stream; the caller must
    /// already have stamped its sequence. Concurrent appends to other
    /// partitions do not contend.
    pub fn append_to(&self, partition: usize, batch: &WriteBatch) -> Result<()> {
        debug_assert!(batch.sequence() > 0, "eWAL batches must be sequence-stamped");
        // Crash site: before any byte of the record lands, so a failed
        // append means the (unacknowledged) write is simply absent.
        storage::failpoint::fail_point("ewal_append").map_err(Error::from)?;
        let mut part = self.partitions[partition].lock();
        part.log.add_record(batch.data())?;
        part.dirty = true;
        self.bytes.fetch_add(batch.byte_size() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Append one batch on the round-robin cursor (no shard affinity).
    pub fn append(&self, batch: &WriteBatch) -> Result<()> {
        let p = self.next.fetch_add(1, Ordering::Relaxed) % self.partitions.len();
        self.append_to(p, batch)
    }

    /// Durably sync one partition if it has unsynced appends. Returns
    /// whether an fsync was actually issued.
    pub fn sync_partition(&self, partition: usize) -> Result<bool> {
        // Crash site: the record is appended but not acknowledged; recovery
        // may legitimately surface either outcome for the in-flight write.
        storage::failpoint::fail_point("ewal_sync").map_err(Error::from)?;
        let mut part = self.partitions[partition].lock();
        if !part.dirty {
            return Ok(false);
        }
        part.log.sync()?;
        part.dirty = false;
        Ok(true)
    }

    /// Durably sync every partition with unsynced appends, skipping clean
    /// ones. Returns how many partitions were actually fsynced.
    pub fn sync(&self) -> Result<usize> {
        storage::failpoint::fail_point("ewal_sync").map_err(Error::from)?;
        let mut synced = 0;
        for partition in &self.partitions {
            let mut part = partition.lock();
            if part.dirty {
                part.log.sync()?;
                part.dirty = false;
                synced += 1;
            }
        }
        Ok(synced)
    }

    /// Sync and close all partitions.
    pub fn finish(self) -> Result<()> {
        for p in self.partitions {
            p.into_inner().log.finish()?;
        }
        Ok(())
    }
}

/// All generations currently present on `env`, sorted ascending.
pub fn list_generations(env: &Arc<dyn Env>) -> Result<Vec<u64>> {
    let mut gens: Vec<u64> = env
        .list("ewal/")?
        .iter()
        .filter_map(|name| parse_ewal_name(name).map(|(g, _)| g))
        .collect();
    gens.sort_unstable();
    gens.dedup();
    Ok(gens)
}

/// Delete every partition file of `generation`.
pub fn delete_generation(env: &Arc<dyn Env>, generation: u64) -> Result<()> {
    for name in env.list("ewal/")? {
        if parse_ewal_name(&name).map(|(g, _)| g) == Some(generation) {
            env.delete(&name)?;
        }
    }
    Ok(())
}

/// All partition files of all generations, for recovery.
pub fn list_partition_files(env: &Arc<dyn Env>) -> Result<Vec<String>> {
    let mut files: Vec<String> =
        env.list("ewal/")?.into_iter().filter(|n| parse_ewal_name(n).is_some()).collect();
    files.sort();
    Ok(files)
}

/// Validate that a batch decoded from the eWAL is structurally sound.
pub fn decode_batch(record: &[u8]) -> Result<WriteBatch> {
    let batch = WriteBatch::from_data(record)?;
    if batch.sequence() == 0 {
        return Err(Error::corruption("eWAL batch missing sequence stamp"));
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::MemEnv;

    fn env() -> Arc<dyn Env> {
        Arc::new(MemEnv::new())
    }

    fn stamped(seq: u64, k: &str, v: &str) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(k.as_bytes(), v.as_bytes());
        b.set_sequence(seq);
        b
    }

    #[test]
    fn names_roundtrip() {
        let name = ewal_name(42, 7);
        assert_eq!(parse_ewal_name(&name), Some((42, 7)));
        assert_eq!(parse_ewal_name("ewal/garbage"), None);
        assert_eq!(parse_ewal_name("wal/000001.log"), None);
    }

    #[test]
    fn append_distributes_round_robin() {
        let env = env();
        let w = EWalWriter::create(&env, 1, 3).unwrap();
        for i in 0..9 {
            w.append(&stamped(i + 1, &format!("k{i}"), "v")).unwrap();
        }
        w.finish().unwrap();
        let files = list_partition_files(&env).unwrap();
        assert_eq!(files.len(), 3);
        // Every partition received writes.
        for f in &files {
            assert!(env.size(f).unwrap() > 0, "partition {f} empty");
        }
    }

    #[test]
    fn sync_touches_only_dirty_partitions() {
        let env = env();
        let w = EWalWriter::create(&env, 1, 4).unwrap();
        // A fresh writer has nothing to sync.
        assert_eq!(w.sync().unwrap(), 0);
        // One partition dirty: exactly one fsync.
        w.append_to(2, &stamped(1, "k", "v")).unwrap();
        assert_eq!(w.sync().unwrap(), 1);
        // Already synced: nothing left to do.
        assert_eq!(w.sync().unwrap(), 0);
        // Two dirty partitions, one synced individually first.
        w.append_to(0, &stamped(2, "k2", "v")).unwrap();
        w.append_to(3, &stamped(3, "k3", "v")).unwrap();
        assert!(w.sync_partition(0).unwrap());
        assert!(!w.sync_partition(0).unwrap(), "second partition sync is a no-op");
        assert_eq!(w.sync().unwrap(), 1, "only the remaining dirty partition syncs");
    }

    #[test]
    fn concurrent_appends_to_distinct_partitions() {
        let env = env();
        let w = Arc::new(EWalWriter::create(&env, 1, 4).unwrap());
        std::thread::scope(|scope| {
            for p in 0..4usize {
                let w = Arc::clone(&w);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let seq = (p as u64) * 50 + i + 1;
                        w.append_to(p, &stamped(seq, &format!("k{p}-{i}"), "v")).unwrap();
                    }
                    w.sync_partition(p).unwrap();
                });
            }
        });
        assert!(w.bytes() > 0);
        Arc::into_inner(w).unwrap().finish().unwrap();
        let files = list_partition_files(&env).unwrap();
        assert_eq!(files.len(), 4);
        for f in &files {
            assert!(env.size(f).unwrap() > 0, "partition {f} empty");
        }
    }

    #[test]
    fn generations_listed_and_deleted() {
        let env = env();
        for generation in [1u64, 2, 3] {
            let w = EWalWriter::create(&env, generation, 2).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(list_generations(&env).unwrap(), vec![1, 2, 3]);
        delete_generation(&env, 2).unwrap();
        assert_eq!(list_generations(&env).unwrap(), vec![1, 3]);
    }

    #[test]
    fn decode_rejects_unstamped_batches() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        assert!(decode_batch(b.data()).is_err());
        b.set_sequence(9);
        let decoded = decode_batch(b.data()).unwrap();
        assert_eq!(decoded.sequence(), 9);
    }

    #[test]
    fn bytes_accumulate() {
        let env = env();
        let w = EWalWriter::create(&env, 1, 2).unwrap();
        assert_eq!(w.bytes(), 0);
        w.append(&stamped(1, "key", "value")).unwrap();
        assert!(w.bytes() > 0);
    }
}
