//! The extended write-ahead log (paper pillar 3).
//!
//! The eWAL differs from the engine's single-stream WAL in two ways that
//! together enable fast parallel recovery:
//!
//! * **Partitioned**: records are spread round-robin over `P` independent
//!   log files, so recovery can read, checksum, and decode all partitions
//!   concurrently.
//! * **Sequence-stamped** (the "extended" metadata): every record is a
//!   [`WriteBatch`] carrying its global sequence number, so the partitions
//!   can be merged back into the exact original write order after parallel
//!   decoding — ordering lives in the record, not in file position.
//!
//! Generations bound replay work: the writer rotates to a new generation
//! right before every memtable flush, and once the flush is durable all
//! older generations are deleted. Crash recovery therefore replays a
//! suffix of history in original order, which is idempotent over the
//! already-flushed prefix.

use std::sync::Arc;

use lsm::wal::LogWriter;
use lsm::{Error, Result, WriteBatch};
use storage::Env;

/// File name of one eWAL partition log.
pub fn ewal_name(generation: u64, partition: usize) -> String {
    format!("ewal/g{generation:06}-p{partition:03}.log")
}

/// Parse an eWAL file name back into (generation, partition).
pub fn parse_ewal_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("ewal/g")?;
    let (gen_str, part) = rest.split_once("-p")?;
    let part_str = part.strip_suffix(".log")?;
    Some((gen_str.parse().ok()?, part_str.parse().ok()?))
}

/// Appends sequence-stamped batches across partition logs.
pub struct EWalWriter {
    partitions: Vec<LogWriter>,
    generation: u64,
    next: usize,
    bytes: u64,
}

impl EWalWriter {
    /// Create the partition logs of `generation`.
    pub fn create(env: &Arc<dyn Env>, generation: u64, partitions: usize) -> Result<EWalWriter> {
        assert!(partitions >= 1, "at least one partition");
        // Crash site: dying here (mid-rotation) must leave the previous
        // generation's writer and files untouched.
        storage::failpoint::fail_point("ewal_rotate").map_err(Error::from)?;
        let mut logs = Vec::with_capacity(partitions);
        for p in 0..partitions {
            logs.push(LogWriter::new(env.new_writable(&ewal_name(generation, p))?));
        }
        Ok(EWalWriter { partitions: logs, generation, next: 0, bytes: 0 })
    }

    /// Generation this writer appends to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes appended across all partitions.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one batch; the caller must already have stamped its sequence.
    pub fn append(&mut self, batch: &WriteBatch) -> Result<()> {
        debug_assert!(batch.sequence() > 0, "eWAL batches must be sequence-stamped");
        // Crash site: before any byte of the record lands, so a failed
        // append means the (unacknowledged) write is simply absent.
        storage::failpoint::fail_point("ewal_append").map_err(Error::from)?;
        self.partitions[self.next].add_record(batch.data())?;
        self.next = (self.next + 1) % self.partitions.len();
        self.bytes += batch.byte_size() as u64;
        Ok(())
    }

    /// Durably sync every partition.
    pub fn sync(&mut self) -> Result<()> {
        // Crash site: the record is appended but not acknowledged; recovery
        // may legitimately surface either outcome for the in-flight write.
        storage::failpoint::fail_point("ewal_sync").map_err(Error::from)?;
        for p in &mut self.partitions {
            p.sync()?;
        }
        Ok(())
    }

    /// Sync and close all partitions.
    pub fn finish(self) -> Result<()> {
        for p in self.partitions {
            p.finish()?;
        }
        Ok(())
    }
}

/// All generations currently present on `env`, sorted ascending.
pub fn list_generations(env: &Arc<dyn Env>) -> Result<Vec<u64>> {
    let mut gens: Vec<u64> = env
        .list("ewal/")?
        .iter()
        .filter_map(|name| parse_ewal_name(name).map(|(g, _)| g))
        .collect();
    gens.sort_unstable();
    gens.dedup();
    Ok(gens)
}

/// Delete every partition file of `generation`.
pub fn delete_generation(env: &Arc<dyn Env>, generation: u64) -> Result<()> {
    for name in env.list("ewal/")? {
        if parse_ewal_name(&name).map(|(g, _)| g) == Some(generation) {
            env.delete(&name)?;
        }
    }
    Ok(())
}

/// All partition files of all generations, for recovery.
pub fn list_partition_files(env: &Arc<dyn Env>) -> Result<Vec<String>> {
    let mut files: Vec<String> =
        env.list("ewal/")?.into_iter().filter(|n| parse_ewal_name(n).is_some()).collect();
    files.sort();
    Ok(files)
}

/// Validate that a batch decoded from the eWAL is structurally sound.
pub fn decode_batch(record: &[u8]) -> Result<WriteBatch> {
    let batch = WriteBatch::from_data(record)?;
    if batch.sequence() == 0 {
        return Err(Error::corruption("eWAL batch missing sequence stamp"));
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::MemEnv;

    fn env() -> Arc<dyn Env> {
        Arc::new(MemEnv::new())
    }

    fn stamped(seq: u64, k: &str, v: &str) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(k.as_bytes(), v.as_bytes());
        b.set_sequence(seq);
        b
    }

    #[test]
    fn names_roundtrip() {
        let name = ewal_name(42, 7);
        assert_eq!(parse_ewal_name(&name), Some((42, 7)));
        assert_eq!(parse_ewal_name("ewal/garbage"), None);
        assert_eq!(parse_ewal_name("wal/000001.log"), None);
    }

    #[test]
    fn append_distributes_round_robin() {
        let env = env();
        let mut w = EWalWriter::create(&env, 1, 3).unwrap();
        for i in 0..9 {
            w.append(&stamped(i + 1, &format!("k{i}"), "v")).unwrap();
        }
        w.finish().unwrap();
        let files = list_partition_files(&env).unwrap();
        assert_eq!(files.len(), 3);
        // Every partition received writes.
        for f in &files {
            assert!(env.size(f).unwrap() > 0, "partition {f} empty");
        }
    }

    #[test]
    fn generations_listed_and_deleted() {
        let env = env();
        for generation in [1u64, 2, 3] {
            let w = EWalWriter::create(&env, generation, 2).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(list_generations(&env).unwrap(), vec![1, 2, 3]);
        delete_generation(&env, 2).unwrap();
        assert_eq!(list_generations(&env).unwrap(), vec![1, 3]);
    }

    #[test]
    fn decode_rejects_unstamped_batches() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        assert!(decode_batch(b.data()).is_err());
        b.set_sequence(9);
        let decoded = decode_batch(b.data()).unwrap();
        assert_eq!(decoded.sequence(), 9);
    }

    #[test]
    fn bytes_accumulate() {
        let env = env();
        let mut w = EWalWriter::create(&env, 1, 2).unwrap();
        assert_eq!(w.bytes(), 0);
        w.append(&stamped(1, "key", "value")).unwrap();
        assert!(w.bytes() > 0);
    }
}
