//! Live tier migration: re-place existing table files when the placement
//! policy changes.
//!
//! The abstract names *data reorganization* as one of the challenges of
//! integrating local with cloud storage. RocksMash's steady-state answer
//! is that compaction re-places data continuously — but when an operator
//! changes the split level (say, to shrink the local footprint), the
//! already-existing files must move. [`migrate_placement`] walks the live
//! version and moves every file whose tier disagrees with the new policy:
//!
//! * **local → cloud**: upload, then delete the local copy. New opens see
//!   the cloud object; already-open handles keep their file descriptor.
//! * **cloud → local**: download and install the local copy, which takes
//!   priority on every future open. The cloud object is left in place as
//!   a harmless duplicate — in-flight readers may still be issuing range
//!   GETs against it — and is garbage-collected on the next database open
//!   (a local copy is authoritative).
//!
//! Files that disappear mid-migration (compaction rewrote them) are
//! skipped: the new policy already governed their rewrite.

use lsm::version::sst_name;
use lsm::Result;
use storage::{ObjectStore, StorageError};

use crate::placement::{PlacementPolicy, Tier};
use crate::router::cloud_sst_key;
use crate::tiered::TieredDb;

/// Outcome of a placement migration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Files uploaded to the cloud tier.
    pub uploaded: usize,
    /// Files downloaded to the local tier.
    pub downloaded: usize,
    /// Files already on their desired tier.
    pub already_placed: usize,
    /// Files that vanished mid-migration (rewritten by compaction).
    pub skipped: usize,
    /// Total bytes moved between tiers.
    pub bytes_moved: u64,
}

/// Switch `db` to `new_placement` and move existing files accordingly.
/// Future flushes/compactions follow the new policy immediately; this
/// call additionally reorganizes everything already on disk.
pub fn migrate_placement(db: &TieredDb, new_placement: PlacementPolicy) -> Result<MigrationReport> {
    // Root span for the migration trace: the cloud PUT/GET round trips it
    // issues open child spans under it.
    let _span = db.observer().span("migrate");
    db.router().set_placement(new_placement);
    let env = db.local_env();
    let cloud = db.cloud();
    let version = db.engine().current_version();
    let mut report = MigrationReport::default();

    for (level, files) in version.levels.iter().enumerate() {
        for meta in files {
            let name = sst_name(meta.number);
            let key = cloud_sst_key(meta.number);
            let desired = new_placement.tier_for_level(level);
            let local = env.exists(&name)?;
            match (desired, local) {
                (Tier::Local, true) | (Tier::Cloud, false) => report.already_placed += 1,
                (Tier::Cloud, true) => {
                    // Crash site: dying mid-migration leaves the file on its
                    // old tier with the new policy in force — re-running the
                    // migration finishes the move (idempotence test below).
                    storage::failpoint::fail_point("migrate_upload")?;
                    // Upload, then drop the local copy. Transient cloud
                    // faults are absorbed by the store's RetryPolicy.
                    let data = env.read_all(&name)?;
                    cloud.put(&key, &data)?;
                    env.delete(&name)?;
                    report.uploaded += 1;
                    report.bytes_moved += data.len() as u64;
                    db.observer().set_residency(
                        meta.number,
                        data.len() as u64,
                        obs::ResidencyTier::Cloud,
                    );
                }
                (Tier::Local, false) => {
                    // Crash site: the cloud object stays authoritative until
                    // the local copy is fully installed.
                    storage::failpoint::fail_point("migrate_download")?;
                    // Download and install; keep the cloud object for any
                    // in-flight readers (GC'd on next open).
                    match cloud.get(&key) {
                        Ok(data) => {
                            env.write_all(&name, &data)?;
                            report.downloaded += 1;
                            report.bytes_moved += data.len() as u64;
                            db.observer().set_residency(
                                meta.number,
                                data.len() as u64,
                                obs::ResidencyTier::Local,
                            );
                        }
                        // Transient faults never reach this arm — the
                        // store's RetryPolicy absorbs them inside `get` —
                        // so NotFound here is definitive. It is only
                        // skippable when the file really vanished
                        // mid-migration (compaction rewrote it); a live
                        // file whose object is missing is data loss and
                        // must surface, not count as `skipped`.
                        Err(StorageError::NotFound(_)) => {
                            let still_live = db
                                .engine()
                                .current_version()
                                .levels
                                .iter()
                                .flatten()
                                .any(|f| f.number == meta.number);
                            if still_live {
                                return Err(StorageError::NotFound(format!(
                                    "migration: cloud object for live table {} is missing",
                                    meta.number
                                ))
                                .into());
                            }
                            report.skipped += 1;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TieredConfig;
    use crate::Scheme;
    use lsm::Options;
    use std::sync::Arc;
    use storage::{Env, MemEnv};

    fn tiny() -> TieredConfig {
        TieredConfig {
            options: Options {
                write_buffer_size: 16 << 10,
                target_file_size: 16 << 10,
                max_bytes_for_level_base: 32 << 10,
                l0_compaction_trigger: 2,
                ..Options::small_for_tests()
            },
            cache_admission: false,
            ..TieredConfig::small_for_tests()
        }
    }

    fn key(i: usize) -> Vec<u8> {
        format!("mig{i:05}").into_bytes()
    }

    fn fill(db: &TieredDb) {
        for i in 0..1000usize {
            db.put(&key(i), format!("v{i}-{}", "m".repeat(64)).as_bytes()).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
    }

    #[test]
    fn migrate_everything_to_local() {
        let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), tiny()).unwrap();
        fill(&db);
        assert!(db.cloud_bytes().unwrap() > 0, "precondition: some files on cloud");
        let report = migrate_placement(&db, PlacementPolicy::all_local()).unwrap();
        assert!(report.downloaded > 0, "{report:?}");
        // Every live file now has a local copy.
        let version = db.engine().current_version();
        for files in &version.levels {
            for meta in files {
                assert!(
                    db.local_env().exists(&sst_name(meta.number)).unwrap(),
                    "file {} not local after migration",
                    meta.number
                );
            }
        }
        // Data fully readable.
        for i in (0..1000).step_by(37) {
            assert!(db.get(&key(i)).unwrap().is_some(), "key {i}");
        }
        db.close().unwrap();
    }

    #[test]
    fn migrate_everything_to_cloud() {
        // Start all-local: the parallel scheduler settles the tree into a
        // shape-dependent set of levels, and a split placement can leave
        // every live file already on the cloud tier (nothing to upload).
        // All-local guarantees the migration has work whatever the shape.
        let config = TieredConfig {
            placement: PlacementPolicy::all_local(),
            ..Scheme::RocksMash.configure(tiny())
        };
        let db = TieredDb::open(Arc::new(MemEnv::new()), config).unwrap();
        fill(&db);
        let report = migrate_placement(&db, PlacementPolicy::all_cloud()).unwrap();
        assert!(report.uploaded > 0, "{report:?}");
        // No live table remains local.
        let version = db.engine().current_version();
        for files in &version.levels {
            for meta in files {
                assert!(
                    !db.local_env().exists(&sst_name(meta.number)).unwrap(),
                    "file {} still local",
                    meta.number
                );
            }
        }
        for i in (0..1000).step_by(41) {
            assert!(db.get(&key(i)).unwrap().is_some(), "key {i}");
        }
        db.close().unwrap();
    }

    #[test]
    fn future_writes_follow_the_new_policy() {
        let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), tiny()).unwrap();
        fill(&db);
        migrate_placement(&db, PlacementPolicy::all_local()).unwrap();
        let cloud_puts_before = db.cloud().cost_tracker().puts();
        for i in 1000..2000usize {
            db.put(&key(i), format!("v{i}-{}", "m".repeat(64)).as_bytes()).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_compactions().unwrap();
        assert_eq!(
            db.cloud().cost_tracker().puts(),
            cloud_puts_before,
            "all-local policy must stop cloud uploads"
        );
        db.close().unwrap();
    }

    #[test]
    fn migration_is_idempotent() {
        let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), tiny()).unwrap();
        fill(&db);
        migrate_placement(&db, PlacementPolicy::all_cloud()).unwrap();
        let second = migrate_placement(&db, PlacementPolicy::all_cloud()).unwrap();
        assert_eq!(second.uploaded, 0);
        assert_eq!(second.downloaded, 0);
        assert!(second.already_placed > 0);
        db.close().unwrap();
    }

    #[test]
    fn missing_object_for_live_file_errors_instead_of_skipping() {
        let db = Scheme::RocksMash.open(Arc::new(MemEnv::new()), tiny()).unwrap();
        fill(&db);
        // Pick a live cloud-resident file and delete its object behind the
        // store's back: the download migration must surface the loss, not
        // classify the file as harmlessly `skipped`.
        let version = db.engine().current_version();
        let victim = version
            .levels
            .iter()
            .flatten()
            .map(|f| f.number)
            .find(|&n| !db.local_env().exists(&sst_name(n)).unwrap())
            .expect("precondition: a cloud-resident live file");
        db.cloud().delete(&cloud_sst_key(victim)).unwrap();
        let err = migrate_placement(&db, PlacementPolicy::all_local()).unwrap_err();
        assert!(err.to_string().contains("missing"), "unexpected error: {err}");
        db.close().unwrap();
    }

    #[test]
    fn stale_cloud_duplicates_are_swept_on_reopen() {
        let env = Arc::new(MemEnv::new());
        let cloud = storage::CloudStore::instant();
        {
            let db = TieredDb::open_with_cloud(env.clone() as Arc<dyn Env>, cloud.clone(), tiny())
                .unwrap();
            fill(&db);
            migrate_placement(&db, PlacementPolicy::all_local()).unwrap();
            // Duplicates: files live locally AND as cloud objects.
            assert!(!cloud.list("sst/").unwrap().is_empty());
            db.close().unwrap();
        }
        let db = TieredDb::open_with_cloud(env as Arc<dyn Env>, cloud.clone(), tiny()).unwrap();
        // Reopen sweeps cloud objects shadowed by local copies.
        for key in cloud.list("sst/").unwrap() {
            let number: u64 = key
                .strip_prefix("sst/")
                .and_then(|s| s.strip_suffix(".sst"))
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                !db.local_env().exists(&sst_name(number)).unwrap(),
                "cloud duplicate of local file {number} survived reopen"
            );
        }
        db.close().unwrap();
    }
}
