//! Configuration for a tiered store instance.

use lsm::Options;
use storage::{CloudConfig, LatencyModel};

use crate::placement::PlacementPolicy;

/// Which persistent cache implementation fronts the cloud tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// No persistent cache: every cloud block read is a range GET.
    None,
    /// RocksMash's LSM-aware cache (compaction-aware layout, packed
    /// metadata, frequency admission).
    Mash,
    /// Conventional block-LRU persistent cache with full metadata (the
    /// RocksDB-Cloud-style comparator).
    Baseline,
}

/// Heat-driven tier promotion: a background pass that pulls the hottest
/// cloud-resident SSTs back to local storage (and demotes the coldest
/// local ones when over budget). Requires `observability` — the pass plans
/// against the heat scores and residency ledger.
#[derive(Debug, Clone)]
pub struct PromotionConfig {
    /// Maximum bytes of SST data the local tier may hold; the heat-aware
    /// policy keeps the hottest prefix of the score ranking under this.
    pub local_budget_bytes: u64,
    /// How often the background promotion pass runs.
    pub interval: std::time::Duration,
    /// Minimum decayed heat score a cloud SST needs before a promotion
    /// download is considered worth it.
    pub min_score: f64,
    /// At most this many files move (promotions + demotions) per pass;
    /// keeps each pass short so it never monopolizes a worker. 0 means
    /// unlimited.
    pub max_files_per_pass: usize,
    /// At most this many bytes move per pass. 0 means unlimited.
    pub max_bytes_per_pass: u64,
}

impl Default for PromotionConfig {
    fn default() -> Self {
        PromotionConfig {
            local_budget_bytes: 256 << 20,
            interval: std::time::Duration::from_secs(10),
            min_score: 1.0,
            max_files_per_pass: 8,
            max_bytes_per_pass: 64 << 20,
        }
    }
}

/// Everything needed to open a [`crate::TieredDb`].
#[derive(Debug, Clone)]
pub struct TieredConfig {
    /// Engine tuning (block size, buffers, compaction triggers...).
    pub options: Options,
    /// Level→tier mapping.
    pub placement: PlacementPolicy,
    /// Persistent cache implementation.
    pub cache: CacheKind,
    /// Persistent cache capacity in bytes (0 disables regardless of kind).
    pub cache_bytes: u64,
    /// Back the Mash cache with this file and recover its contents across
    /// restarts (None keeps cache space in memory, losing it on restart).
    pub cache_file: Option<std::path::PathBuf>,
    /// Slots per cache extent (invalidation granule of the Mash cache).
    pub cache_slots_per_extent: u32,
    /// Frequency-based admission in the Mash cache.
    pub cache_admission: bool,
    /// Use the extended WAL (partitioned, parallel recovery) instead of the
    /// engine's single-stream WAL.
    pub ewal: bool,
    /// Number of eWAL partitions (ignored unless `ewal`).
    pub ewal_partitions: usize,
    /// Replay eWAL partitions in parallel on open.
    pub parallel_recovery: bool,
    /// Simulated cloud behaviour (latency, pricing, failures).
    pub cloud: CloudConfig,
    /// Optional latency model charged on local reads/writes.
    pub local_latency: Option<LatencyModel>,
    /// Data blocks of readahead scheduled during sequential scans
    /// ([`lsm::ReadOptions::readahead_blocks`] for `TieredDb::scan`).
    /// 0 disables readahead; per-call overrides are available via
    /// `TieredDb::scan_with`.
    pub readahead_blocks: usize,
    /// Record latency histograms and journal events across the whole stack
    /// (engine, cloud store, persistent cache, eWAL). Off, every hook
    /// degenerates to a single branch.
    pub observability: bool,
    /// Foreground operations slower than this publish a `SlowOp` journal
    /// event (ignored unless `observability`).
    pub slow_op_threshold: std::time::Duration,
    /// Background operations (flush, compaction, upload, migration) slower
    /// than this publish a `SlowOp` too. Deliberately much higher than
    /// `slow_op_threshold`: background work is routinely tens of
    /// milliseconds, but a multi-second stall deserves a journal entry.
    pub slow_background_threshold: std::time::Duration,
    /// Capture a full perf-context for every Nth foreground operation and
    /// fold it into the metrics snapshot (stage-share gauges). 0 disables
    /// sampling; explicit per-call capture still works.
    pub perf_sample_every: u64,
    /// Print [`crate::TieredDb::stats_string`] to stderr at this interval
    /// from a background thread (RocksDB's `stats_dump_period_sec`); None
    /// disables the dump.
    pub stats_dump_interval: Option<std::time::Duration>,
    /// Serve `/metrics` (Prometheus), `/stats.json`, `/heat.json`,
    /// `/timeseries.json`, and `/health.json` over HTTP on this address (e.g.
    /// `"127.0.0.1:9184"`; port 0 picks an ephemeral port, readable via
    /// `TieredDb::metrics_addr`). None disables the exporter entirely —
    /// no socket, no thread.
    pub metrics_listen: Option<String>,
    /// Half-life of the decayed per-SST heat scores: every elapsed
    /// half-life, every score halves (one decay tick). Shorter reacts
    /// faster to workload shifts; longer smooths bursts.
    pub heat_half_life: std::time::Duration,
    /// Interval between metrics samples pushed into the time-series ring
    /// by the background sampler (also the resolution of windowed rates).
    pub timeseries_sample_interval: std::time::Duration,
    /// Time-series ring capacity in samples; with the default 1s sample
    /// interval, 360 spans the longest (5m) rate window with headroom.
    pub timeseries_capacity: usize,
    /// Heat-driven tier promotion. None keeps the static level split with
    /// no background movement (every baseline scheme); Some installs the
    /// [`crate::HeatAware`] policy and schedules the promotion pass.
    pub promotion: Option<PromotionConfig>,
}

impl TieredConfig {
    /// The full RocksMash configuration.
    pub fn rocksmash() -> Self {
        TieredConfig {
            options: Options::default(),
            placement: PlacementPolicy::rocksmash_default(),
            cache: CacheKind::Mash,
            cache_bytes: 64 << 20,
            cache_file: None,
            cache_slots_per_extent: 64,
            cache_admission: true,
            ewal: true,
            ewal_partitions: 4,
            parallel_recovery: true,
            cloud: CloudConfig::default(),
            local_latency: None,
            readahead_blocks: 0,
            observability: true,
            slow_op_threshold: obs::DEFAULT_SLOW_OP,
            slow_background_threshold: obs::DEFAULT_SLOW_BACKGROUND,
            perf_sample_every: 0,
            stats_dump_interval: None,
            metrics_listen: None,
            heat_half_life: std::time::Duration::from_secs(60),
            timeseries_sample_interval: std::time::Duration::from_secs(1),
            timeseries_capacity: obs::DEFAULT_RING_CAPACITY,
            promotion: None,
        }
    }

    /// Small-scale variant for tests: tiny buffers, instant cloud.
    pub fn small_for_tests() -> Self {
        TieredConfig {
            options: Options::small_for_tests(),
            cache_bytes: 4 << 20,
            cloud: CloudConfig::instant(),
            ..Self::rocksmash()
        }
    }

    /// Derived engine options honoring the eWAL decision: with the eWAL on,
    /// the engine WAL is disabled and flushes are driven by the tiered
    /// layer.
    pub(crate) fn engine_options(&self) -> Options {
        let mut options = self.options.clone();
        if self.ewal {
            options.wal_enabled = false;
        }
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rocksmash_preset_is_coherent() {
        let c = TieredConfig::rocksmash();
        assert_eq!(c.cache, CacheKind::Mash);
        assert!(c.ewal);
        assert!(c.placement.uses_cloud());
        assert!(!c.engine_options().wal_enabled);
    }

    #[test]
    fn engine_wal_enabled_without_ewal() {
        let c = TieredConfig { ewal: false, ..TieredConfig::rocksmash() };
        assert!(c.engine_options().wal_enabled);
    }
}
