//! Request latency simulation for the cloud tier.
//!
//! The paper's cloud tier (S3-class object storage) is dominated by
//! per-request first-byte latency plus a bandwidth term. We model each
//! request's service time as
//!
//! ```text
//! t = base + bytes / bandwidth, jittered uniformly by ±jitter_frac
//! ```
//!
//! and realize it with a real `thread::sleep`, so wall-clock benchmark
//! results reflect the tier gap. Defaults are scaled down ~10× from public
//! S3 numbers so experiment sweeps finish in minutes while preserving the
//! local/cloud *ratio* that drives the paper's conclusions.

use std::time::Duration;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Latency model applied to every simulated cloud request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-request latency (first byte), in microseconds.
    pub base_us: u64,
    /// Sustained transfer bandwidth in MiB/s (0 disables the byte term).
    pub bandwidth_mib_s: f64,
    /// Uniform jitter as a fraction of the nominal latency (0.0..1.0).
    pub jitter_frac: f64,
}

impl LatencyModel {
    /// No latency at all; useful for unit tests.
    pub fn zero() -> Self {
        LatencyModel { base_us: 0, bandwidth_mib_s: 0.0, jitter_frac: 0.0 }
    }

    /// Scaled-down S3-like profile: ~1.5 ms first byte, ~200 MiB/s.
    pub fn cloud_default() -> Self {
        LatencyModel { base_us: 1500, bandwidth_mib_s: 200.0, jitter_frac: 0.10 }
    }

    /// Scaled-down local-NVMe-like profile: ~40 µs, ~2 GiB/s. Used when the
    /// benches want the *local* tier to also pay realistic device time.
    pub fn local_nvme() -> Self {
        LatencyModel { base_us: 40, bandwidth_mib_s: 2048.0, jitter_frac: 0.05 }
    }

    /// Nominal (un-jittered) service time for a request moving `bytes`.
    pub fn nominal(&self, bytes: usize) -> Duration {
        let mut us = self.base_us as f64;
        if self.bandwidth_mib_s > 0.0 {
            us += bytes as f64 / (self.bandwidth_mib_s * 1024.0 * 1024.0) * 1e6;
        }
        Duration::from_nanos((us * 1000.0) as u64)
    }

    /// Sampled service time including jitter.
    pub fn sample(&self, bytes: usize, rng: &mut impl Rng) -> Duration {
        let nominal = self.nominal(bytes);
        if self.jitter_frac <= 0.0 || nominal.is_zero() {
            return nominal;
        }
        let f = 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        nominal.mul_f64(f.max(0.0))
    }

    /// Sleep for a sampled service time, returning the duration slept.
    pub fn pay(&self, bytes: usize, rng: &mut impl Rng) -> Duration {
        let d = self.sample(bytes, rng);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::cloud_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_model_is_free() {
        let m = LatencyModel::zero();
        assert_eq!(m.nominal(1 << 20), Duration::ZERO);
    }

    #[test]
    fn base_term_applies_to_empty_request() {
        let m = LatencyModel { base_us: 100, bandwidth_mib_s: 0.0, jitter_frac: 0.0 };
        assert_eq!(m.nominal(0), Duration::from_micros(100));
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let m = LatencyModel { base_us: 0, bandwidth_mib_s: 1.0, jitter_frac: 0.0 };
        // 1 MiB at 1 MiB/s == 1 s.
        assert_eq!(m.nominal(1024 * 1024), Duration::from_secs(1));
        // Half the bytes, half the time.
        assert_eq!(m.nominal(512 * 1024), Duration::from_millis(500));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let m = LatencyModel { base_us: 1000, bandwidth_mib_s: 0.0, jitter_frac: 0.2 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = m.sample(0, &mut rng);
            assert!(d >= Duration::from_micros(800), "{d:?}");
            assert!(d <= Duration::from_micros(1200), "{d:?}");
        }
    }

    #[test]
    fn cloud_slower_than_local_profile() {
        let cloud = LatencyModel::cloud_default();
        let local = LatencyModel::local_nvme();
        assert!(cloud.nominal(4096) > local.nominal(4096) * 10);
    }
}
