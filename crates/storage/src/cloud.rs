//! Simulated cloud object store (the paper's S3/OSS substitute).
//!
//! Objects live in a sharded in-memory map; every request pays the
//! configured [`LatencyModel`], is accounted by the [`CostTracker`], counted
//! in [`StoreStats`], and may be failed by the [`FailurePolicy`]. The
//! simulator therefore reproduces the three properties the paper's design
//! exploits: high per-request latency, per-request billing, and transient
//! unreliability — while staying deterministic and laptop-runnable.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::{ObjectStore, RandomAccessFile};
use crate::cost::{CostModel, CostTracker};
use crate::error::{Result, StorageError};
use crate::failpoint;
use crate::failure::FailurePolicy;
use crate::latency::LatencyModel;
use crate::metrics::StoreStats;
use crate::retry::{Retrier, RetryPolicy};

const SHARDS: usize = 16;

/// Configuration for a [`CloudStore`].
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Latency charged per request.
    pub latency: LatencyModel,
    /// Unit prices used for cost reports.
    pub cost: CostModel,
    /// Probability of a transient failure per request (0 disables).
    pub failure_prob: f64,
    /// Seed for latency jitter and fault injection.
    pub seed: u64,
    /// Mirror every object to files under this directory and reload them
    /// at construction, so the simulated cloud survives process restarts
    /// (used by the CLI and long-lived deployments of the simulator).
    pub backing_dir: Option<std::path::PathBuf>,
    /// Throttle requests to this many per second (S3-style rate ceiling);
    /// None disables throttling. Excess load turns into queueing delay.
    pub max_requests_per_sec: Option<f64>,
    /// Vectored `get_ranges` merges ranges whose gap is at most this many
    /// bytes into one billed GET (the over-read is cheaper than a second
    /// first-byte RTT). 0 merges only exactly-adjacent ranges.
    pub coalesce_gap_bytes: u64,
    /// Client-side retry policy every request runs under (capped
    /// exponential backoff + jitter + deadline + retry budget).
    pub retry: RetryPolicy,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            latency: LatencyModel::cloud_default(),
            cost: CostModel::aws_like(),
            failure_prob: 0.0,
            seed: 0xc10d,
            backing_dir: None,
            max_requests_per_sec: None,
            coalesce_gap_bytes: 32 * 1024,
            retry: RetryPolicy::default(),
        }
    }
}

impl CloudConfig {
    /// Zero-latency, zero-failure config for unit tests. Retries stay on
    /// (they are part of the client every path should exercise) but with
    /// zero backoff, so injected-fault tests never sleep.
    pub fn instant() -> Self {
        CloudConfig {
            latency: LatencyModel::zero(),
            cost: CostModel::aws_like(),
            failure_prob: 0.0,
            seed: 1,
            backing_dir: None,
            max_requests_per_sec: None,
            coalesce_gap_bytes: 32 * 1024,
            retry: RetryPolicy::fast_for_tests(),
        }
    }
}

struct Shard {
    objects: BTreeMap<String, Arc<Vec<u8>>>,
}

/// The simulated object store. Cheap to clone (`Arc` internals shared).
#[derive(Clone)]
pub struct CloudStore {
    shards: Arc<[RwLock<Shard>; SHARDS]>,
    latency: LatencyModel,
    cost_model: CostModel,
    cost: Arc<CostTracker>,
    stats: Arc<StoreStats>,
    failure: Arc<FailurePolicy>,
    rng: Arc<Mutex<StdRng>>,
    backing: Option<Arc<std::path::PathBuf>>,
    limiter: Option<Arc<crate::limiter::RateLimiter>>,
    coalesce_gap: u64,
    retrier: Arc<Retrier>,
    /// Set once by the embedding store (after it builds its observer);
    /// clones share the slot, so attaching through any handle covers all.
    observer: Arc<OnceLock<Arc<obs::Observer>>>,
}

impl CloudStore {
    /// Build a store from `config`, reloading persisted objects when a
    /// backing directory is configured.
    pub fn new(config: CloudConfig) -> Self {
        let shards: [RwLock<Shard>; SHARDS] =
            std::array::from_fn(|_| RwLock::new(Shard { objects: BTreeMap::new() }));
        let store = CloudStore {
            shards: Arc::new(shards),
            latency: config.latency,
            cost_model: config.cost,
            cost: Arc::new(CostTracker::new()),
            stats: Arc::new(StoreStats::new()),
            failure: Arc::new(FailurePolicy::with_probability(config.failure_prob, config.seed)),
            rng: Arc::new(Mutex::new(StdRng::seed_from_u64(config.seed))),
            backing: config.backing_dir.map(Arc::new),
            limiter: config
                .max_requests_per_sec
                .map(|rate| Arc::new(crate::limiter::RateLimiter::new(rate, rate / 10.0))),
            coalesce_gap: config.coalesce_gap_bytes,
            retrier: Arc::new(Retrier::new(config.retry)),
            observer: Arc::new(OnceLock::new()),
        };
        if let Some(dir) = store.backing.clone() {
            let _ = std::fs::create_dir_all(&*dir);
            store.reload_backing(&dir);
        }
        store
    }

    /// Load every object file under `dir` into the in-memory shards.
    fn reload_backing(&self, dir: &std::path::Path) {
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&d) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(data) = std::fs::read(&path) {
                    let key = path
                        .strip_prefix(dir)
                        .expect("under backing dir")
                        .to_string_lossy()
                        .replace('\\', "/");
                    self.shard_for(&key).write().objects.insert(key, Arc::new(data));
                }
            }
        }
    }

    fn backing_write(&self, key: &str, data: &[u8]) {
        if let Some(dir) = &self.backing {
            let path = dir.join(key);
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let _ = std::fs::write(path, data);
        }
    }

    fn backing_delete(&self, key: &str) {
        if let Some(dir) = &self.backing {
            let _ = std::fs::remove_file(dir.join(key));
        }
    }

    /// Zero-latency store for tests.
    pub fn instant() -> Self {
        Self::new(CloudConfig::instant())
    }

    /// Cost accounting for this store.
    pub fn cost_tracker(&self) -> &Arc<CostTracker> {
        &self.cost
    }

    /// Unit prices this store was configured with.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Request statistics for this store.
    pub fn stats(&self) -> &Arc<StoreStats> {
        &self.stats
    }

    /// Fault-injection policy for this store.
    pub fn failure_policy(&self) -> &Arc<FailurePolicy> {
        &self.failure
    }

    /// Retry executor every request runs through.
    pub fn retrier(&self) -> &Arc<Retrier> {
        &self.retrier
    }

    /// Attach a latency observer: every billed GET/PUT is then timed into
    /// its `cloud_get` / `cloud_coalesced_get` / `cloud_put` histograms,
    /// and retry attempts/exhaustions surface as journal events.
    /// The first attach wins; later calls are no-ops.
    pub fn attach_observer(&self, obs: Arc<obs::Observer>) {
        self.retrier.attach_observer(Arc::clone(&obs));
        let _ = self.observer.set(obs);
    }

    fn obs_start(&self) -> Option<std::time::Instant> {
        self.observer.get().and_then(|o| o.start())
    }

    fn obs_finish(&self, op: obs::Op, timer: Option<std::time::Instant>) {
        if let Some(o) = self.observer.get() {
            o.finish(op, timer);
        }
    }

    /// Wrap one logical GET (retries, failpoints, and simulated latency
    /// included) in the caller's perf context and trace: the whole wall
    /// time is charged to `cloud_get_ns`, and a `cloud_get` child span is
    /// opened when the calling op carries a trace.
    fn perf_cloud_get<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let _span = self.observer.get().and_then(|o| o.child_span("cloud_get"));
        let started = obs::perf::start_stage();
        let out = f();
        obs::perf::finish_stage(started, |c, ns| {
            c.cloud_gets += 1;
            c.cloud_get_ns += ns;
        });
        out
    }

    fn shard_for(&self, key: &str) -> &RwLock<Shard> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn pay(&self, bytes: usize) {
        if let Some(limiter) = &self.limiter {
            limiter.acquire();
        }
        // Sample under the lock, sleep outside it: requests from different
        // client threads must overlap their simulated service times, or the
        // simulator would serialize the whole cloud behind one mutex.
        let wait = {
            let mut rng = self.rng.lock();
            self.latency.sample(bytes, &mut *rng)
        };
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        self.stats.record_wait(wait);
    }

    fn lookup(&self, key: &str) -> Result<Arc<Vec<u8>>> {
        self.shard_for(key)
            .read()
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }
}

impl ObjectStore for CloudStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let _span = self.observer.get().and_then(|o| o.child_span("cloud_put"));
        self.retrier.execute("put", || {
            failpoint::fail_point("cloud_put")?;
            self.failure.check("put")?;
            let timer = self.obs_start();
            self.pay(data.len());
            self.cost.record_put();
            self.stats.record_write(data.len() as u64);
            self.shard_for(key).write().objects.insert(key.to_string(), Arc::new(data.to_vec()));
            self.backing_write(key, data);
            self.obs_finish(obs::Op::CloudPut, timer);
            Ok(())
        })
    }

    fn get(&self, key: &str) -> Result<Vec<u8>> {
        self.perf_cloud_get(|| {
            self.retrier.execute("get", || {
                failpoint::fail_point("cloud_get")?;
                self.failure.check("get")?;
                let timer = self.obs_start();
                let obj = self.lookup(key)?;
                self.pay(obj.len());
                self.cost.record_get(obj.len() as u64);
                self.stats.record_read(obj.len() as u64);
                obs::perf::count(|c| {
                    c.cloud_billed_gets += 1;
                    c.cloud_get_bytes += obj.len() as u64;
                });
                self.obs_finish(obs::Op::CloudGet, timer);
                Ok(obj.as_ref().clone())
            })
        })
    }

    fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.perf_cloud_get(|| {
            self.retrier.execute("get_range", || {
                failpoint::fail_point("cloud_get")?;
                self.failure.check("get_range")?;
                let timer = self.obs_start();
                let obj = self.lookup(key)?;
                let off = offset.min(obj.len() as u64) as usize;
                let n = len.min(obj.len() - off);
                self.pay(n);
                self.cost.record_get(n as u64);
                self.stats.record_read(n as u64);
                obs::perf::count(|c| {
                    c.cloud_billed_gets += 1;
                    c.cloud_get_bytes += n as u64;
                });
                self.obs_finish(obs::Op::CloudGet, timer);
                Ok(obj[off..off + n].to_vec())
            })
        })
    }

    fn get_ranges(&self, key: &str, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        if ranges.is_empty() {
            return Ok(Vec::new());
        }
        self.perf_cloud_get(|| {
            self.retrier.execute("get_ranges", || self.get_ranges_once(key, ranges))
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.retrier.execute("delete", || {
            failpoint::fail_point("cloud_delete")?;
            self.failure.check("delete")?;
            self.pay(0);
            self.cost.record_put();
            self.stats.record_delete();
            self.shard_for(key)
                .write()
                .objects
                .remove(key)
                .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
            self.backing_delete(key);
            Ok(())
        })
    }

    fn exists(&self, key: &str) -> Result<bool> {
        self.retrier.execute("head", || {
            failpoint::fail_point("cloud_get")?;
            self.failure.check("head")?;
            self.pay(0);
            self.cost.record_get(0);
            Ok(self.shard_for(key).read().objects.contains_key(key))
        })
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.retrier.execute("head", || {
            failpoint::fail_point("cloud_get")?;
            self.failure.check("head")?;
            self.pay(0);
            self.cost.record_get(0);
            Ok(self.lookup(key)?.len() as u64)
        })
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.retrier.execute("list", || {
            failpoint::fail_point("cloud_get")?;
            self.failure.check("list")?;
            self.pay(0);
            self.cost.record_get(0);
            let mut out: Vec<String> = Vec::new();
            for shard in self.shards.iter() {
                out.extend(shard.read().objects.keys().filter(|k| k.starts_with(prefix)).cloned());
            }
            out.sort();
            Ok(out)
        })
    }

    fn open_object(&self, key: &str) -> Result<Arc<dyn RandomAccessFile>> {
        // HEAD-like validation; each subsequent read_at is a range GET.
        let obj = self.perf_cloud_get(|| {
            self.retrier.execute("head", || {
                failpoint::fail_point("cloud_get")?;
                self.lookup(key)
            })
        })?;
        Ok(Arc::new(CloudObjectFile {
            store: self.clone(),
            key: key.to_string(),
            len: obj.len() as u64,
        }))
    }

    fn total_bytes(&self) -> Result<u64> {
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            sum += shard.read().objects.values().map(|v| v.len() as u64).sum::<u64>();
        }
        Ok(sum)
    }
}

impl CloudStore {
    /// One un-retried attempt of the vectored GET (the body of
    /// [`ObjectStore::get_ranges`]).
    fn get_ranges_once(&self, key: &str, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        failpoint::fail_point("cloud_get")?;
        self.failure.check("get_ranges")?;
        let obj = self.lookup(key)?;
        // Clamp each range to the object, as get_range does.
        let clamped: Vec<(u64, usize)> = ranges
            .iter()
            .map(|&(offset, len)| {
                let off = offset.min(obj.len() as u64);
                (off, len.min(obj.len() - off as usize))
            })
            .collect();
        // Sort by offset (remembering caller order) and walk runs whose gap
        // fits under the coalescing threshold: one billed GET per run.
        let mut order: Vec<usize> = (0..clamped.len()).collect();
        order.sort_by_key(|&i| clamped[i]);
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); clamped.len()];
        let mut run_start = 0;
        while run_start < order.len() {
            let (first_off, first_len) = clamped[order[run_start]];
            let mut run_end = run_start + 1;
            let mut end = first_off + first_len as u64;
            while run_end < order.len() {
                let (off, len) = clamped[order[run_end]];
                if off > end + self.coalesce_gap {
                    break;
                }
                end = end.max(off + len as u64);
                run_end += 1;
            }
            let span = (end - first_off) as usize;
            let timer = self.obs_start();
            self.pay(span);
            // A run covering several caller ranges is a coalesced GET;
            // a single-range run is billed and timed like a plain GET.
            let op = if run_end - run_start > 1 {
                obs::Op::CloudCoalescedGet
            } else {
                obs::Op::CloudGet
            };
            self.obs_finish(op, timer);
            obs::perf::count(|c| {
                if run_end - run_start > 1 {
                    c.cloud_coalesced_gets += 1;
                } else {
                    c.cloud_billed_gets += 1;
                }
                c.cloud_get_bytes += span as u64;
            });
            self.cost.record_get(span as u64);
            self.stats.record_read(span as u64);
            self.stats.record_coalesced_get((run_end - run_start) as u64);
            for &i in &order[run_start..run_end] {
                let (off, len) = clamped[i];
                out[i] = obj[off as usize..off as usize + len].to_vec();
            }
            run_start = run_end;
        }
        Ok(out)
    }
}

/// Random-access view over a cloud object; every `read_at` issues a billed,
/// latency-charged range GET, which is what makes uncached cloud reads slow.
struct CloudObjectFile {
    store: CloudStore,
    key: String,
    len: u64,
}

impl RandomAccessFile for CloudObjectFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let data = self.store.get_range(&self.key, offset, buf.len())?;
        buf[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn read_ranges(&self, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        let out = self.store.get_ranges(&self.key, ranges)?;
        for (buf, &(offset, len)) in out.iter().zip(ranges) {
            if buf.len() != len {
                return Err(StorageError::corruption(format!(
                    "short ranged read: wanted {len} bytes at {offset}, got {}",
                    buf.len()
                )));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s = CloudStore::instant();
        s.put("a/b", b"payload").unwrap();
        assert_eq!(s.get("a/b").unwrap(), b"payload");
        assert_eq!(s.size("a/b").unwrap(), 7);
        assert!(s.exists("a/b").unwrap());
        assert!(!s.exists("a/c").unwrap());
    }

    #[test]
    fn range_get_clamps_to_object() {
        let s = CloudStore::instant();
        s.put("k", b"0123456789").unwrap();
        assert_eq!(s.get_range("k", 3, 4).unwrap(), b"3456");
        assert_eq!(s.get_range("k", 8, 100).unwrap(), b"89");
        assert_eq!(s.get_range("k", 100, 4).unwrap(), b"");
    }

    #[test]
    fn delete_then_get_is_not_found() {
        let s = CloudStore::instant();
        s.put("k", b"x").unwrap();
        s.delete("k").unwrap();
        assert!(matches!(s.get("k"), Err(StorageError::NotFound(_))));
        assert!(matches!(s.delete("k"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn list_is_sorted_across_shards() {
        let s = CloudStore::instant();
        for k in ["sst/9", "sst/1", "sst/5", "wal/2"] {
            s.put(k, b"").unwrap();
        }
        assert_eq!(
            s.list("sst/").unwrap(),
            vec!["sst/1".to_string(), "sst/5".to_string(), "sst/9".to_string()]
        );
    }

    #[test]
    fn object_file_reads_like_range_gets() {
        let s = CloudStore::instant();
        s.put("obj", b"abcdefgh").unwrap();
        let f = s.open_object("obj").unwrap();
        assert_eq!(f.len(), 8);
        assert_eq!(f.read_exact_at(2, 3).unwrap(), b"cde");
        // Each read_at was billed as a GET.
        assert!(s.cost_tracker().gets() >= 1);
    }

    #[test]
    fn costs_and_stats_are_recorded() {
        let s = CloudStore::instant();
        s.put("k", &[0u8; 1000]).unwrap();
        let _ = s.get("k").unwrap();
        assert_eq!(s.cost_tracker().puts(), 1);
        assert_eq!(s.cost_tracker().gets(), 1);
        assert_eq!(s.cost_tracker().egress_bytes(), 1000);
        let snap = s.stats().snapshot();
        assert_eq!(snap.bytes_written, 1000);
        assert_eq!(snap.bytes_read, 1000);
    }

    #[test]
    fn injected_failures_surface_as_transient_errors() {
        let s = CloudStore::new(CloudConfig {
            latency: LatencyModel::zero(),
            failure_prob: 1.0,
            ..CloudConfig::instant()
        });
        let err = s.put("k", b"x").unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn retries_absorb_transient_faults() {
        let s = CloudStore::new(CloudConfig {
            latency: LatencyModel::zero(),
            failure_prob: 0.3,
            seed: 42,
            retry: crate::RetryPolicy { max_attempts: 10, ..crate::RetryPolicy::fast_for_tests() },
            ..CloudConfig::instant()
        });
        for i in 0..100 {
            s.put(&format!("k{i}"), b"v").unwrap();
        }
        for i in 0..100 {
            assert_eq!(s.get(&format!("k{i}")).unwrap(), b"v");
        }
        let snap = s.retrier().snapshot();
        assert!(snap.attempts > 0, "a 30% fault rate must have forced retries");
        assert_eq!(snap.exhausted, 0);
        assert!(s.failure_policy().injected_count() > 0);
    }

    #[test]
    fn permanent_errors_bypass_retry() {
        let s = CloudStore::instant();
        s.put("k", b"v").unwrap();
        // NotFound is permanent and must not consume retry attempts.
        assert!(matches!(s.get("missing"), Err(StorageError::NotFound(_))));
        assert_eq!(s.retrier().snapshot().attempts, 0, "NotFound must not retry");
    }

    #[test]
    fn clones_share_state() {
        let a = CloudStore::instant();
        let b = a.clone();
        a.put("k", b"v").unwrap();
        assert_eq!(b.get("k").unwrap(), b"v");
        assert_eq!(a.total_bytes().unwrap(), 1);
    }

    #[test]
    fn request_rate_ceiling_throttles() {
        let s = CloudStore::new(CloudConfig {
            max_requests_per_sec: Some(500.0),
            ..CloudConfig::instant()
        });
        s.put("k", b"v").unwrap();
        let start = std::time::Instant::now();
        for _ in 0..100 {
            let _ = s.get("k").unwrap();
        }
        // ~100 requests at 500/s with a 50-token burst ≈ ≥100 ms.
        assert!(start.elapsed().as_millis() >= 80, "throttling had no effect");
    }

    #[test]
    fn backing_dir_persists_objects_across_instances() {
        let dir = std::env::temp_dir().join(format!(
            "rocksmash-cloudback-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CloudConfig { backing_dir: Some(dir.clone()), ..CloudConfig::instant() };
        {
            let s = CloudStore::new(config.clone());
            s.put("sst/000001.sst", b"persisted").unwrap();
            s.put("sst/000002.sst", b"deleted").unwrap();
            s.delete("sst/000002.sst").unwrap();
        }
        let s = CloudStore::new(config);
        assert_eq!(s.get("sst/000001.sst").unwrap(), b"persisted");
        assert!(matches!(s.get("sst/000002.sst"), Err(StorageError::NotFound(_))));
        assert_eq!(s.list("sst/").unwrap(), vec!["sst/000001.sst".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn get_ranges_coalesces_adjacent_into_one_billed_get() {
        let s = CloudStore::instant();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        s.put("k", &data).unwrap();
        let gets_before = s.cost_tracker().gets();
        // Eight contiguous 512-byte ranges: one coalesced GET.
        let ranges: Vec<(u64, usize)> = (0..8).map(|i| (i * 512, 512)).collect();
        let out = s.get_ranges("k", &ranges).unwrap();
        for (i, buf) in out.iter().enumerate() {
            assert_eq!(buf.as_slice(), &data[i * 512..(i + 1) * 512]);
        }
        assert_eq!(s.cost_tracker().gets() - gets_before, 1);
        let snap = s.stats().snapshot();
        assert_eq!(snap.coalesced_gets, 1);
        assert_eq!(snap.requests_saved, 7);
    }

    #[test]
    fn get_ranges_splits_runs_beyond_gap_threshold() {
        let s = CloudStore::new(CloudConfig { coalesce_gap_bytes: 16, ..CloudConfig::instant() });
        s.put("k", &vec![7u8; 10_000]).unwrap();
        let gets_before = s.cost_tracker().gets();
        // Two clusters separated by a gap far over the threshold.
        let out = s.get_ranges("k", &[(0, 100), (110, 100), (5000, 100), (5105, 100)]).unwrap();
        assert!(out.iter().all(|b| b.len() == 100));
        assert_eq!(s.cost_tracker().gets() - gets_before, 2);
        assert_eq!(s.stats().snapshot().requests_saved, 2);
    }

    #[test]
    fn get_ranges_preserves_caller_order_for_unsorted_input() {
        let s = CloudStore::instant();
        s.put("k", b"abcdefghij").unwrap();
        let out = s.get_ranges("k", &[(6, 2), (0, 2), (3, 2)]).unwrap();
        assert_eq!(out, vec![b"gh".to_vec(), b"ab".to_vec(), b"de".to_vec()]);
    }

    #[test]
    fn object_file_vectored_read_matches_serial_reads() {
        let s = CloudStore::instant();
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 256) as u8).collect();
        s.put("obj", &data).unwrap();
        let f = s.open_object("obj").unwrap();
        let ranges = [(10u64, 20usize), (100, 50), (900, 100)];
        let vectored = f.read_ranges(&ranges).unwrap();
        for (buf, &(off, len)) in vectored.iter().zip(&ranges) {
            assert_eq!(buf, &f.read_exact_at(off, len).unwrap());
        }
    }

    #[test]
    fn overwrite_replaces_object() {
        let s = CloudStore::instant();
        s.put("k", b"old").unwrap();
        s.put("k", b"newer").unwrap();
        assert_eq!(s.get("k").unwrap(), b"newer");
        assert_eq!(s.total_bytes().unwrap(), 5);
    }
}
