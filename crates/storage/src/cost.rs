//! Cloud-storage cost model and accounting.
//!
//! The paper's motivation is *cost-effectiveness*: cloud capacity is ~an
//! order of magnitude cheaper per GB than local NVMe, but every request and
//! every egressed byte is billed. [`CostModel`] carries the unit prices,
//! [`CostTracker`] accumulates billable events, and [`CostReport`]
//! summarizes a run for experiment E7 (cost-effectiveness table).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Unit prices, modeled on public S3 Standard + EBS gp3 list prices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Cloud capacity price, $ per GiB-month.
    pub cloud_gb_month: f64,
    /// Local (NVMe/EBS-class) capacity price, $ per GiB-month.
    pub local_gb_month: f64,
    /// $ per 1000 PUT/DELETE/LIST class requests.
    pub put_per_1k: f64,
    /// $ per 1000 GET/HEAD class requests.
    pub get_per_1k: f64,
    /// $ per GiB transferred out of the cloud store.
    pub egress_per_gb: f64,
}

impl CostModel {
    /// S3 Standard + gp3-like defaults (2021-era list prices).
    pub fn aws_like() -> Self {
        CostModel {
            cloud_gb_month: 0.023,
            local_gb_month: 0.08,
            put_per_1k: 0.005,
            get_per_1k: 0.0004,
            egress_per_gb: 0.09,
        }
    }

    /// A model with all prices zero (tests).
    pub fn free() -> Self {
        CostModel {
            cloud_gb_month: 0.0,
            local_gb_month: 0.0,
            put_per_1k: 0.0,
            get_per_1k: 0.0,
            egress_per_gb: 0.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::aws_like()
    }
}

/// Thread-safe accumulator of billable cloud events.
#[derive(Debug, Default)]
pub struct CostTracker {
    puts: AtomicU64,
    gets: AtomicU64,
    egress_bytes: AtomicU64,
}

impl CostTracker {
    /// New tracker with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one PUT/DELETE-class request.
    pub fn record_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one GET/HEAD-class request and the bytes it egressed.
    pub fn record_get(&self, bytes: u64) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.egress_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of PUT-class requests so far.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Number of GET-class requests so far.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Bytes egressed so far.
    pub fn egress_bytes(&self) -> u64 {
        self.egress_bytes.load(Ordering::Relaxed)
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.puts.store(0, Ordering::Relaxed);
        self.gets.store(0, Ordering::Relaxed);
        self.egress_bytes.store(0, Ordering::Relaxed);
    }

    /// Produce a billing summary given the capacity resident on each tier.
    pub fn report(&self, model: &CostModel, cloud_bytes: u64, local_bytes: u64) -> CostReport {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let request_cost = self.puts() as f64 / 1000.0 * model.put_per_1k
            + self.gets() as f64 / 1000.0 * model.get_per_1k;
        let egress_cost = self.egress_bytes() as f64 / GIB * model.egress_per_gb;
        let cloud_capacity_cost = cloud_bytes as f64 / GIB * model.cloud_gb_month;
        let local_capacity_cost = local_bytes as f64 / GIB * model.local_gb_month;
        CostReport {
            puts: self.puts(),
            gets: self.gets(),
            egress_bytes: self.egress_bytes(),
            request_cost,
            egress_cost,
            cloud_capacity_cost,
            local_capacity_cost,
        }
    }
}

/// Billing summary for one run; capacity terms are $/month, request and
/// egress terms are $ for the run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CostReport {
    /// PUT-class requests issued.
    pub puts: u64,
    /// GET-class requests issued.
    pub gets: u64,
    /// Bytes egressed from the cloud store.
    pub egress_bytes: u64,
    /// $ for requests.
    pub request_cost: f64,
    /// $ for egress.
    pub egress_cost: f64,
    /// $/month for cloud-resident capacity.
    pub cloud_capacity_cost: f64,
    /// $/month for local-resident capacity.
    pub local_capacity_cost: f64,
}

impl CostReport {
    /// Total $ assuming the run's request/egress charges recur monthly.
    pub fn monthly_total(&self) -> f64 {
        self.request_cost + self.egress_cost + self.cloud_capacity_cost + self.local_capacity_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1024 * 1024 * 1024;

    #[test]
    fn free_model_costs_nothing() {
        let t = CostTracker::new();
        t.record_put();
        t.record_get(GIB);
        let r = t.report(&CostModel::free(), GIB, GIB);
        assert_eq!(r.monthly_total(), 0.0);
    }

    #[test]
    fn request_costs_accumulate() {
        let model = CostModel { put_per_1k: 5.0, get_per_1k: 1.0, ..CostModel::free() };
        let t = CostTracker::new();
        for _ in 0..1000 {
            t.record_put();
        }
        for _ in 0..2000 {
            t.record_get(0);
        }
        let r = t.report(&model, 0, 0);
        assert!((r.request_cost - (5.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn capacity_split_between_tiers() {
        let model = CostModel { cloud_gb_month: 0.02, local_gb_month: 0.10, ..CostModel::free() };
        let t = CostTracker::new();
        let r = t.report(&model, 100 * GIB, 10 * GIB);
        assert!((r.cloud_capacity_cost - 2.0).abs() < 1e-9);
        assert!((r.local_capacity_cost - 1.0).abs() < 1e-9);
        // 100 GiB cloud is still cheaper than 10× less local at these prices? No:
        // the point is the per-GiB price gap.
        assert!(model.cloud_gb_month < model.local_gb_month);
    }

    #[test]
    fn egress_billed_per_gib() {
        let model = CostModel { egress_per_gb: 0.09, ..CostModel::free() };
        let t = CostTracker::new();
        t.record_get(2 * GIB);
        let r = t.report(&model, 0, 0);
        assert!((r.egress_cost - 0.18).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters() {
        let t = CostTracker::new();
        t.record_put();
        t.record_get(42);
        t.reset();
        assert_eq!(t.puts(), 0);
        assert_eq!(t.gets(), 0);
        assert_eq!(t.egress_bytes(), 0);
    }
}
