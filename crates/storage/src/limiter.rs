//! Token-bucket request rate limiter.
//!
//! Real object stores throttle clients (S3: per-prefix request rate
//! ceilings, 503 SlowDown). The simulator models the benign form: callers
//! block until a token is available, so offered load above the ceiling
//! turns into queueing delay — which is how SDKs with backoff behave in
//! aggregate.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

/// Blocking token bucket: `rate` tokens per second, up to `burst` banked.
pub struct RateLimiter {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

impl RateLimiter {
    /// Limiter allowing `rate` requests/second with a burst allowance.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        RateLimiter {
            rate,
            burst: burst.max(1.0),
            state: Mutex::new(BucketState { tokens: burst.max(1.0), last_refill: Instant::now() }),
        }
    }

    /// Take one token, sleeping until one is available.
    pub fn acquire(&self) {
        loop {
            let wait = {
                let mut state = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(state.last_refill).as_secs_f64();
                state.tokens = (state.tokens + elapsed * self.rate).min(self.burst);
                state.last_refill = now;
                if state.tokens >= 1.0 {
                    state.tokens -= 1.0;
                    return;
                }
                // Time until one token accrues.
                Duration::from_secs_f64((1.0 - state.tokens) / self.rate)
            };
            std::thread::sleep(wait);
        }
    }

    /// Take one token without blocking; false when the bucket is empty.
    pub fn try_acquire(&self) -> bool {
        let mut state = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_refill).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.rate).min(self.burst);
        state.last_refill = now;
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_instant() {
        let limiter = RateLimiter::new(10.0, 5.0);
        let start = Instant::now();
        for _ in 0..5 {
            limiter.acquire();
        }
        assert!(start.elapsed() < Duration::from_millis(50), "burst must not block");
    }

    #[test]
    fn sustained_rate_is_bounded() {
        let limiter = RateLimiter::new(200.0, 1.0);
        let start = Instant::now();
        for _ in 0..60 {
            limiter.acquire();
        }
        let elapsed = start.elapsed().as_secs_f64();
        // ~59 tokens at 200/s ≈ 295 ms; allow generous scheduling slop
        // but require clearly-throttled behaviour.
        assert!(elapsed > 0.20, "only took {elapsed}s for 60 acquires at 200/s");
    }

    #[test]
    fn try_acquire_fails_when_empty() {
        let limiter = RateLimiter::new(1.0, 1.0);
        assert!(limiter.try_acquire());
        assert!(!limiter.try_acquire(), "bucket should be empty");
    }

    #[test]
    fn tokens_replenish_over_time() {
        let limiter = RateLimiter::new(1000.0, 1.0);
        assert!(limiter.try_acquire());
        std::thread::sleep(Duration::from_millis(10));
        assert!(limiter.try_acquire(), "10 ms at 1000/s should bank a token");
    }

    #[test]
    fn concurrent_acquires_share_the_budget() {
        let limiter = std::sync::Arc::new(RateLimiter::new(400.0, 1.0));
        let start = Instant::now();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let limiter = std::sync::Arc::clone(&limiter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    limiter.acquire();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 80 tokens at 400/s ≈ 200 ms minimum.
        assert!(start.elapsed().as_secs_f64() > 0.15);
    }
}
