//! Probabilistic fault injection for reliability experiments.
//!
//! Cloud object stores exhibit transient request failures; the paper claims
//! RocksMash "delivers high reliability", which our integration tests
//! validate by driving the store through injected faults and crash points.
//! Transient faults surface as [`StorageError::Injected`] and are retried
//! by [`crate::Retrier`]; permanent faults surface as
//! [`StorageError::Corruption`] and must *not* be retried — the split
//! exists so tests can prove the retry layer never loops on real damage.
//! For deterministic "die exactly here" injection, see
//! [`crate::failpoint`].

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{Result, StorageError};

/// Injects errors into a configurable fraction of requests.
#[derive(Debug)]
pub struct FailurePolicy {
    error_prob: f64,
    permanent_prob: f64,
    rng: Mutex<StdRng>,
    injected: AtomicU64,
    injected_permanent: AtomicU64,
}

impl FailurePolicy {
    /// Policy that fails each request independently with `error_prob`,
    /// always transiently.
    pub fn with_probability(error_prob: f64, seed: u64) -> Self {
        Self::with_probabilities(error_prob, 0.0, seed)
    }

    /// Policy with independent transient and permanent failure rates. A
    /// permanent fault models unrecoverable damage (bit rot, a corrupted
    /// object): it is classified non-transient, so retry layers surface it
    /// immediately.
    pub fn with_probabilities(error_prob: f64, permanent_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_prob), "probability out of range");
        assert!((0.0..=1.0).contains(&permanent_prob), "probability out of range");
        FailurePolicy {
            error_prob,
            permanent_prob,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            injected: AtomicU64::new(0),
            injected_permanent: AtomicU64::new(0),
        }
    }

    /// Policy that never fails.
    pub fn none() -> Self {
        Self::with_probability(0.0, 0)
    }

    /// Roll the dice for one request named `op`.
    pub fn check(&self, op: &str) -> Result<()> {
        if self.error_prob <= 0.0 && self.permanent_prob <= 0.0 {
            return Ok(());
        }
        let mut rng = self.rng.lock();
        if self.permanent_prob > 0.0 && rng.gen_bool(self.permanent_prob) {
            drop(rng);
            self.injected_permanent.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Corruption(format!("injected permanent fault during {op}")));
        }
        if self.error_prob > 0.0 && rng.gen_bool(self.error_prob) {
            drop(rng);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Injected(format!("transient failure during {op}")));
        }
        Ok(())
    }

    /// Number of transient faults injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Number of permanent faults injected so far.
    pub fn injected_permanent_count(&self) -> u64 {
        self.injected_permanent.load(Ordering::Relaxed)
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let p = FailurePolicy::none();
        for _ in 0..1000 {
            p.check("get").unwrap();
        }
        assert_eq!(p.injected_count(), 0);
    }

    #[test]
    fn always_fails_at_probability_one() {
        let p = FailurePolicy::with_probability(1.0, 1);
        assert!(p.check("put").is_err());
        assert_eq!(p.injected_count(), 1);
    }

    #[test]
    fn rate_roughly_matches_probability() {
        let p = FailurePolicy::with_probability(0.25, 42);
        let mut failures = 0;
        for _ in 0..10_000 {
            if p.check("get").is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn transient_faults_are_transient() {
        let p = FailurePolicy::with_probability(1.0, 7);
        let err = p.check("get").unwrap_err();
        assert!(err.is_transient());
    }

    #[test]
    fn permanent_faults_are_not_transient() {
        let p = FailurePolicy::with_probabilities(0.0, 1.0, 7);
        let err = p.check("get").unwrap_err();
        assert!(!err.is_transient(), "permanent faults must not be retryable");
        assert!(matches!(err, StorageError::Corruption(_)));
        assert_eq!(p.injected_permanent_count(), 1);
        assert_eq!(p.injected_count(), 0);
    }

    #[test]
    fn mixed_policy_injects_both_kinds() {
        let p = FailurePolicy::with_probabilities(0.3, 0.3, 11);
        let mut transient = 0u64;
        let mut permanent = 0u64;
        for _ in 0..2_000 {
            match p.check("get") {
                Ok(()) => {}
                Err(e) if e.is_transient() => transient += 1,
                Err(_) => permanent += 1,
            }
        }
        assert!(transient > 200, "transient {transient}");
        assert!(permanent > 200, "permanent {permanent}");
        assert_eq!(p.injected_count(), transient);
        assert_eq!(p.injected_permanent_count(), permanent);
    }
}
