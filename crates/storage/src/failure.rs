//! Probabilistic fault injection for reliability experiments.
//!
//! Cloud object stores exhibit transient request failures; the paper claims
//! RocksMash "delivers high reliability", which our integration tests
//! validate by driving the store through injected faults and crash points.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{Result, StorageError};

/// Injects transient errors into a configurable fraction of requests.
#[derive(Debug)]
pub struct FailurePolicy {
    error_prob: f64,
    rng: Mutex<StdRng>,
    injected: AtomicU64,
}

impl FailurePolicy {
    /// Policy that fails each request independently with `error_prob`.
    pub fn with_probability(error_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_prob), "probability out of range");
        FailurePolicy {
            error_prob,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            injected: AtomicU64::new(0),
        }
    }

    /// Policy that never fails.
    pub fn none() -> Self {
        Self::with_probability(0.0, 0)
    }

    /// Roll the dice for one request named `op`.
    pub fn check(&self, op: &str) -> Result<()> {
        if self.error_prob > 0.0 && self.rng.lock().gen_bool(self.error_prob) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Injected(format!("transient failure during {op}")));
        }
        Ok(())
    }

    /// Number of faults injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Retry `f` up to `attempts` times, retrying only transient errors.
///
/// This is the client-side policy real cloud SDKs apply; RocksMash's tiering
/// layer wraps cloud requests with it.
pub fn with_retries<T>(attempts: u32, mut f: impl FnMut() -> Result<T>) -> Result<T> {
    let mut last = None;
    for _ in 0..attempts.max(1) {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let p = FailurePolicy::none();
        for _ in 0..1000 {
            p.check("get").unwrap();
        }
        assert_eq!(p.injected_count(), 0);
    }

    #[test]
    fn always_fails_at_probability_one() {
        let p = FailurePolicy::with_probability(1.0, 1);
        assert!(p.check("put").is_err());
        assert_eq!(p.injected_count(), 1);
    }

    #[test]
    fn rate_roughly_matches_probability() {
        let p = FailurePolicy::with_probability(0.25, 42);
        let mut failures = 0;
        for _ in 0..10_000 {
            if p.check("get").is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn retries_recover_from_transient_faults() {
        let mut remaining_failures = 2;
        let out = with_retries(5, || {
            if remaining_failures > 0 {
                remaining_failures -= 1;
                Err(StorageError::Injected("boom".into()))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
    }

    #[test]
    fn retries_do_not_mask_permanent_errors() {
        let mut calls = 0;
        let out: Result<()> = with_retries(5, || {
            calls += 1;
            Err(StorageError::NotFound("x".into()))
        });
        assert!(matches!(out, Err(StorageError::NotFound(_))));
        assert_eq!(calls, 1, "permanent errors must not be retried");
    }

    #[test]
    fn retries_exhausted_returns_last_error() {
        let out: Result<()> = with_retries(3, || Err(StorageError::Injected("x".into())));
        assert!(matches!(out, Err(StorageError::Injected(_))));
    }
}
