//! Local filesystem environment: the paper's fast local tier.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::{Env, RandomAccessFile, WritableFile};
use crate::error::{Result, StorageError};
use crate::latency::LatencyModel;
use crate::metrics::StoreStats;

/// Filesystem-backed [`Env`], rooted at a directory.
///
/// An optional [`LatencyModel`] lets benchmarks charge local reads/writes a
/// device-like service time even when the OS page cache would otherwise make
/// them free, keeping the local/cloud gap realistic.
pub struct LocalEnv {
    root: PathBuf,
    stats: Arc<StoreStats>,
    latency: Option<LatencyModel>,
    rng: Mutex<StdRng>,
}

impl LocalEnv {
    /// Create an environment rooted at `root`, creating the directory.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalEnv {
            root,
            stats: Arc::new(StoreStats::new()),
            latency: None,
            rng: Mutex::new(StdRng::seed_from_u64(0x10ca1)),
        })
    }

    /// Attach a latency model charged on every read/write.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Request statistics for this environment.
    pub fn stats(&self) -> &Arc<StoreStats> {
        &self.stats
    }

    /// Root directory of this environment.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn full(&self, name: &str) -> Result<PathBuf> {
        if name.starts_with('/') || name.split('/').any(|c| c == "..") {
            return Err(StorageError::InvalidArgument(format!("bad path: {name}")));
        }
        Ok(self.root.join(name))
    }

    fn pay(&self, bytes: usize) {
        if let Some(model) = &self.latency {
            let wait = {
                let mut rng = self.rng.lock();
                model.sample(bytes, &mut *rng)
            };
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            self.stats.record_wait(wait);
        }
    }
}

impl Env for LocalEnv {
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let path = self.full(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        Ok(Box::new(LocalWritable {
            file,
            len: 0,
            stats: self.stats.clone(),
            latency: self.latency.clone(),
        }))
    }

    fn open_appendable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let path = self.full(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(Box::new(LocalWritable {
            file,
            len,
            stats: self.stats.clone(),
            latency: self.latency.clone(),
        }))
    }

    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let path = self.full(name)?;
        let file = File::open(&path)?;
        let len = file.metadata()?.len();
        Ok(Arc::new(LocalRandom {
            file: Mutex::new(file),
            len,
            stats: self.stats.clone(),
            latency: self.latency.clone(),
            rng: Mutex::new(StdRng::seed_from_u64(0xacce55)),
        }))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> Result<()> {
        let path = self.full(name)?;
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("tmp~");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.pay(data.len());
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn delete(&self, name: &str) -> Result<()> {
        let path = self.full(name)?;
        fs::remove_file(&path)?;
        self.stats.record_delete();
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let from = self.full(from)?;
        let to = self.full(to)?;
        if let Some(parent) = to.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::rename(from, to)?;
        Ok(())
    }

    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.full(name)?.exists())
    }

    fn size(&self, name: &str) -> Result<u64> {
        Ok(fs::metadata(self.full(name)?)?.len())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let rel = path
                        .strip_prefix(&self.root)
                        .expect("entry under root")
                        .to_string_lossy()
                        .replace('\\', "/");
                    if rel.starts_with(prefix) && !rel.ends_with(".tmp~") {
                        out.push(rel);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

struct LocalWritable {
    file: File,
    len: u64,
    stats: Arc<StoreStats>,
    latency: Option<LatencyModel>,
}

impl WritableFile for LocalWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if let Some(model) = &self.latency {
            // Charge the device latency at sync time: that is when a real
            // device's write latency becomes visible to the caller.
            let mut rng = StdRng::seed_from_u64(self.len);
            let waited = model.pay(0, &mut rng);
            self.stats.record_wait(waited);
        }
        self.file.sync_data()?;
        Ok(())
    }

    fn finish(&mut self) -> Result<u64> {
        self.sync()?;
        Ok(self.len)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

struct LocalRandom {
    file: Mutex<File>,
    len: u64,
    stats: Arc<StoreStats>,
    latency: Option<LatencyModel>,
    rng: Mutex<StdRng>,
}

impl RandomAccessFile for LocalRandom {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let n = {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(offset))?;
            let mut read = 0;
            while read < buf.len() {
                match file.read(&mut buf[read..])? {
                    0 => break,
                    n => read += n,
                }
            }
            read
        };
        if let Some(model) = &self.latency {
            let wait = {
                let mut rng = self.rng.lock();
                model.sample(n, &mut *rng)
            };
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            self.stats.record_wait(wait);
        }
        self.stats.record_read(n as u64);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_env(tag: &str) -> LocalEnv {
        let dir = std::env::temp_dir().join(format!(
            "rocksmash-localenv-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        LocalEnv::new(dir).unwrap()
    }

    #[test]
    fn write_then_read_roundtrip() {
        let env = temp_env("roundtrip");
        let mut w = env.new_writable("a/b/file.dat").unwrap();
        w.append(b"hello ").unwrap();
        w.append(b"world").unwrap();
        assert_eq!(w.finish().unwrap(), 11);
        let r = env.open_random("a/b/file.dat").unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(r.read_exact_at(0, 11).unwrap(), b"hello world");
        assert_eq!(r.read_exact_at(6, 5).unwrap(), b"world");
    }

    #[test]
    fn short_read_at_eof() {
        let env = temp_env("short");
        env.write_all("f", b"abc").unwrap();
        let r = env.open_random("f").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(r.read_at(1, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"bc");
        assert_eq!(r.read_at(10, &mut buf).unwrap(), 0);
    }

    #[test]
    fn append_mode_preserves_existing_content() {
        let env = temp_env("append");
        env.write_all("log", b"one").unwrap();
        let mut w = env.open_appendable("log").unwrap();
        assert_eq!(w.len(), 3);
        w.append(b"two").unwrap();
        w.finish().unwrap();
        assert_eq!(env.read_all("log").unwrap(), b"onetwo");
    }

    #[test]
    fn list_is_recursive_sorted_and_prefix_filtered() {
        let env = temp_env("list");
        env.write_all("x/2", b"").unwrap();
        env.write_all("x/1", b"").unwrap();
        env.write_all("y/1", b"").unwrap();
        assert_eq!(env.list("x/").unwrap(), vec!["x/1".to_string(), "x/2".to_string()]);
        assert_eq!(env.list("").unwrap().len(), 3);
    }

    #[test]
    fn rename_replaces_target() {
        let env = temp_env("rename");
        env.write_all("a", b"new").unwrap();
        env.write_all("b", b"old").unwrap();
        env.rename("a", "b").unwrap();
        assert!(!env.exists("a").unwrap());
        assert_eq!(env.read_all("b").unwrap(), b"new");
    }

    #[test]
    fn delete_missing_is_not_found() {
        let env = temp_env("delmiss");
        assert!(matches!(env.delete("nope"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn path_escape_rejected() {
        let env = temp_env("escape");
        assert!(env.write_all("../evil", b"x").is_err());
        assert!(env.write_all("/abs", b"x").is_err());
        assert!(env.write_all("a/../../evil", b"x").is_err());
    }

    #[test]
    fn stats_track_bytes() {
        let env = temp_env("stats");
        env.write_all("f", &[7u8; 100]).unwrap();
        let r = env.open_random("f").unwrap();
        let _ = r.read_exact_at(0, 100).unwrap();
        let snap = env.stats().snapshot();
        assert_eq!(snap.bytes_written, 100);
        assert_eq!(snap.bytes_read, 100);
    }

    #[test]
    fn total_bytes_sums_files() {
        let env = temp_env("total");
        env.write_all("a", &[0u8; 10]).unwrap();
        env.write_all("b", &[0u8; 32]).unwrap();
        assert_eq!(env.total_bytes().unwrap(), 42);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn latency_model_charges_reads_and_syncs() {
        let dir = std::env::temp_dir().join(format!(
            "rocksmash-latency-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let env = LocalEnv::new(dir).unwrap().with_latency(LatencyModel {
            base_us: 200,
            bandwidth_mib_s: 0.0,
            jitter_frac: 0.0,
        });
        let mut w = env.new_writable("f").unwrap();
        w.append(&[0u8; 4096]).unwrap();
        w.finish().unwrap(); // one sync => one base charge
        let r = env.open_random("f").unwrap();
        let _ = r.read_exact_at(0, 4096).unwrap();
        let _ = r.read_exact_at(0, 4096).unwrap();
        let waited = env.stats().snapshot().simulated_wait_ns;
        // 1 sync + 2 reads at 200 µs each.
        assert!(waited >= 3 * 200_000, "waited only {waited} ns");
    }
}
