//! Client-side retry policy for cloud requests.
//!
//! Real object-store SDKs never issue a bare request: they retry transient
//! failures under capped exponential backoff with jitter, bound each
//! logical operation by a deadline, and cap the *global* fraction of
//! traffic that may be retries (a retry budget) so an outage cannot turn
//! into a self-inflicted retry storm. [`RetryPolicy`] is the configuration
//! and [`Retrier`] the shared runtime state; [`crate::CloudStore`] routes
//! every GET/PUT/DELETE/HEAD/LIST through one.
//!
//! Only errors classified transient by [`StorageError::is_transient`] are
//! retried — corruption, not-found, and failpoint errors surface
//! immediately, so genuine damage can never loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{Result, StorageError};

/// Tunables for [`Retrier`]. All durations bound simulated cloud requests,
/// so the defaults are modest; production S3 clients scale these up.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries per operation (first attempt included). 1 disables
    /// retries entirely.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Growth factor between consecutive backoffs.
    pub multiplier: f64,
    /// Each backoff is scaled by a factor drawn uniformly from
    /// `[1 - jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
    /// Deadline for one logical operation across all of its attempts;
    /// `None` disables. Checked between attempts (requests themselves are
    /// synchronous), so an op gives up with [`StorageError::Timeout`]
    /// rather than starting a retry it cannot finish in time.
    pub op_timeout: Option<Duration>,
    /// Retry-budget capacity in tokens: each retry spends one token, each
    /// successful operation refunds [`RetryPolicy::budget_refill`]. When
    /// the bucket is empty, transient failures surface instead of
    /// retrying. `None` disables budgeting.
    pub budget: Option<f64>,
    /// Tokens refunded to the budget per successful operation.
    pub budget_refill: f64,
    /// Seed for the jitter RNG (keeps reliability tests reproducible).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            multiplier: 2.0,
            jitter_frac: 0.2,
            op_timeout: Some(Duration::from_secs(30)),
            budget: Some(100.0),
            budget_refill: 0.1,
            seed: 0x5e77,
        }
    }
}

impl RetryPolicy {
    /// Retries with zero backoff, for tests that inject failures but must
    /// not spend wall-clock sleeping.
    pub fn fast_for_tests() -> Self {
        RetryPolicy {
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            op_timeout: None,
            budget: None,
            ..RetryPolicy::default()
        }
    }

    /// A policy that never retries (single attempt, no deadline).
    pub fn disabled() -> Self {
        RetryPolicy { max_attempts: 1, op_timeout: None, budget: None, ..RetryPolicy::default() }
    }

    /// Un-jittered backoff before retry number `retry` (1-based): capped
    /// exponential growth from [`RetryPolicy::initial_backoff`].
    pub fn base_backoff(&self, retry: u32) -> Duration {
        let grown = self.initial_backoff.as_secs_f64()
            * self.multiplier.powi(retry.saturating_sub(1) as i32);
        Duration::from_secs_f64(grown.min(self.max_backoff.as_secs_f64()))
    }

    /// Inclusive `[min, max]` bounds the jittered backoff for retry number
    /// `retry` must fall within (what the unit tests assert against).
    pub fn backoff_bounds(&self, retry: u32) -> (Duration, Duration) {
        let base = self.base_backoff(retry).as_secs_f64();
        (
            Duration::from_secs_f64(base * (1.0 - self.jitter_frac)),
            Duration::from_secs_f64(base * (1.0 + self.jitter_frac)),
        )
    }
}

/// Counter snapshot of a [`Retrier`]'s lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrySnapshot {
    /// Individual retry attempts issued (excludes first tries).
    pub attempts: u64,
    /// Operations that gave up: attempts exhausted, deadline hit, or
    /// budget empty.
    pub exhausted: u64,
    /// Operations that ultimately succeeded after at least one retry.
    pub recovered: u64,
}

/// Shared retry executor: one per [`crate::CloudStore`], cloned handles
/// share counters, budget, and the jitter RNG.
#[derive(Debug)]
pub struct Retrier {
    policy: RetryPolicy,
    rng: Mutex<StdRng>,
    /// Remaining budget tokens (unused when the policy disables budgeting).
    tokens: Mutex<f64>,
    attempts: AtomicU64,
    exhausted: AtomicU64,
    recovered: AtomicU64,
    observer: OnceLock<Arc<obs::Observer>>,
}

impl Retrier {
    /// Build an executor for `policy`.
    pub fn new(policy: RetryPolicy) -> Self {
        Retrier {
            rng: Mutex::new(StdRng::seed_from_u64(policy.seed)),
            tokens: Mutex::new(policy.budget.unwrap_or(0.0)),
            policy,
            attempts: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            observer: OnceLock::new(),
        }
    }

    /// The policy this executor runs.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Surface `RetryAttempt`/`RetryExhausted` events through `obs`'s
    /// journal. The first attach wins.
    pub fn attach_observer(&self, obs: Arc<obs::Observer>) {
        let _ = self.observer.set(obs);
    }

    /// Lifetime counters.
    pub fn snapshot(&self) -> RetrySnapshot {
        RetrySnapshot {
            attempts: self.attempts.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    /// Jittered backoff before retry number `retry` (1-based).
    fn jittered_backoff(&self, retry: u32) -> Duration {
        let base = self.policy.base_backoff(retry).as_secs_f64();
        if base == 0.0 {
            return Duration::ZERO;
        }
        let jitter = self.policy.jitter_frac;
        let factor =
            if jitter > 0.0 { self.rng.lock().gen_range(1.0 - jitter..=1.0 + jitter) } else { 1.0 };
        Duration::from_secs_f64(base * factor)
    }

    /// Try to spend one budget token; `true` when retrying is allowed.
    fn take_token(&self) -> bool {
        match self.policy.budget {
            None => true,
            Some(_) => {
                let mut tokens = self.tokens.lock();
                if *tokens >= 1.0 {
                    *tokens -= 1.0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Refund the budget after a successful operation.
    fn refund(&self) {
        if let Some(cap) = self.policy.budget {
            let mut tokens = self.tokens.lock();
            *tokens = (*tokens + self.policy.budget_refill).min(cap);
        }
    }

    fn give_up(&self, op: &str, attempts: u32) {
        self.exhausted.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.observer.get() {
            o.event(obs::EventKind::RetryExhausted {
                op: op.to_string(),
                attempts: attempts as u64,
            });
        }
    }

    /// Run `f` under this policy: retry transient errors with capped
    /// jittered backoff until success, a permanent error, attempt
    /// exhaustion, deadline expiry, or an empty retry budget.
    pub fn execute<T>(&self, op: &str, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let deadline = self.policy.op_timeout.map(|t| Instant::now() + t);
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            match f() {
                Ok(v) => {
                    if attempt > 1 {
                        self.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    self.refund();
                    return Ok(v);
                }
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => {
                    if attempt >= self.policy.max_attempts.max(1) {
                        self.give_up(op, attempt);
                        return Err(e);
                    }
                    if !self.take_token() {
                        self.give_up(op, attempt);
                        return Err(e);
                    }
                    let backoff = self.jittered_backoff(attempt);
                    if let Some(deadline) = deadline {
                        if Instant::now() + backoff >= deadline {
                            self.give_up(op, attempt);
                            return Err(StorageError::Timeout(format!(
                                "{op}: deadline exceeded after {attempt} attempts (last: {e})"
                            )));
                        }
                    }
                    self.attempts.fetch_add(1, Ordering::Relaxed);
                    obs::perf::count(|c| {
                        c.retry_attempts += 1;
                        c.retry_backoff_ns += backoff.as_nanos() as u64;
                    });
                    if let Some(o) = self.observer.get() {
                        o.event(obs::EventKind::RetryAttempt {
                            op: op.to_string(),
                            attempt: attempt as u64,
                            backoff_us: backoff.as_micros() as u64,
                        });
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }
}

impl Default for Retrier {
    fn default() -> Self {
        Retrier::new(RetryPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> StorageError {
        StorageError::Injected("boom".into())
    }

    #[test]
    fn recovers_from_transient_faults() {
        let r = Retrier::new(RetryPolicy::fast_for_tests());
        let mut remaining = 2;
        let out = r.execute("get", || {
            if remaining > 0 {
                remaining -= 1;
                Err(transient())
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        let snap = r.snapshot();
        assert_eq!(snap.attempts, 2);
        assert_eq!(snap.recovered, 1);
        assert_eq!(snap.exhausted, 0);
    }

    #[test]
    fn permanent_errors_never_retry() {
        let r = Retrier::new(RetryPolicy::fast_for_tests());
        let mut calls = 0;
        let out: Result<()> = r.execute("get", || {
            calls += 1;
            Err(StorageError::corruption("bad crc"))
        });
        assert!(matches!(out, Err(StorageError::Corruption(_))));
        assert_eq!(calls, 1);
        assert_eq!(r.snapshot().attempts, 0);
    }

    #[test]
    fn failpoint_errors_never_retry() {
        let r = Retrier::new(RetryPolicy::fast_for_tests());
        let mut calls = 0;
        let out: Result<()> = r.execute("put", || {
            calls += 1;
            Err(StorageError::FailPoint("cloud_put".into()))
        });
        assert!(matches!(out, Err(StorageError::FailPoint(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let r = Retrier::new(RetryPolicy { max_attempts: 3, ..RetryPolicy::fast_for_tests() });
        let mut calls = 0;
        let out: Result<()> = r.execute("get", || {
            calls += 1;
            Err(StorageError::Injected(format!("fault #{calls}")))
        });
        match out {
            Err(StorageError::Injected(msg)) => assert_eq!(msg, "fault #3"),
            other => panic!("expected the last injected error, got {other:?}"),
        }
        assert_eq!(calls, 3);
        assert_eq!(r.snapshot().exhausted, 1);
    }

    #[test]
    fn backoff_grows_capped_and_jittered_within_bounds() {
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            multiplier: 2.0,
            jitter_frac: 0.2,
            ..RetryPolicy::default()
        };
        // Un-jittered sequence: 10, 20, 40, 40, 40 (capped).
        assert_eq!(policy.base_backoff(1), Duration::from_millis(10));
        assert_eq!(policy.base_backoff(2), Duration::from_millis(20));
        assert_eq!(policy.base_backoff(3), Duration::from_millis(40));
        assert_eq!(policy.base_backoff(7), Duration::from_millis(40));
        let r = Retrier::new(policy.clone());
        for retry in 1..=8 {
            let (lo, hi) = policy.backoff_bounds(retry);
            for _ in 0..50 {
                let b = r.jittered_backoff(retry);
                assert!(b >= lo && b <= hi, "retry {retry}: {b:?} outside [{lo:?}, {hi:?}]");
            }
            assert!(hi <= Duration::from_millis(49), "cap plus jitter exceeded");
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let r = Retrier::new(RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            jitter_frac: 0.5,
            ..RetryPolicy::default()
        });
        let samples: Vec<Duration> = (0..20).map(|_| r.jittered_backoff(1)).collect();
        assert!(samples.iter().any(|&s| s != samples[0]), "all jittered backoffs identical");
    }

    #[test]
    fn deadline_fires_as_timeout() {
        let r = Retrier::new(RetryPolicy {
            max_attempts: 100,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(20),
            jitter_frac: 0.0,
            op_timeout: Some(Duration::from_millis(30)),
            budget: None,
            ..RetryPolicy::default()
        });
        let start = Instant::now();
        let out: Result<()> = r.execute("get", || Err(transient()));
        match out {
            Err(StorageError::Timeout(msg)) => assert!(msg.contains("get")),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_millis(500), "gave up promptly");
        assert_eq!(r.snapshot().exhausted, 1);
    }

    #[test]
    fn empty_budget_stops_retrying() {
        let r = Retrier::new(RetryPolicy {
            max_attempts: 10,
            budget: Some(3.0),
            budget_refill: 0.0,
            ..RetryPolicy::fast_for_tests()
        });
        // One op burns the whole budget (3 retries), then fails.
        let out: Result<()> = r.execute("get", || Err(transient()));
        assert!(out.is_err());
        assert_eq!(r.snapshot().attempts, 3);
        // The next transient failure cannot retry at all.
        let mut calls = 0;
        let out: Result<()> = r.execute("get", || {
            calls += 1;
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "no tokens left, no retries");
        assert_eq!(r.snapshot().exhausted, 2);
    }

    #[test]
    fn successes_refill_the_budget() {
        let r = Retrier::new(RetryPolicy {
            max_attempts: 10,
            budget: Some(1.0),
            budget_refill: 1.0,
            ..RetryPolicy::fast_for_tests()
        });
        let out: Result<()> = r.execute("get", || Err(transient()));
        assert!(out.is_err());
        assert_eq!(r.snapshot().attempts, 1, "budget of 1 allows one retry");
        // A success refunds a token...
        r.execute("get", || Ok(())).unwrap();
        // ...so the next transient failure can retry again.
        let mut calls = 0;
        let _: Result<()> = r.execute("get", || {
            calls += 1;
            Err(transient())
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn disabled_policy_is_single_attempt() {
        let r = Retrier::new(RetryPolicy::disabled());
        let mut calls = 0;
        let out: Result<()> = r.execute("get", || {
            calls += 1;
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
