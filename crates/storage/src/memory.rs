//! In-memory [`Env`] used by unit tests and fast property tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::backend::{Env, RandomAccessFile, WritableFile};
use crate::error::{Result, StorageError};
use crate::metrics::StoreStats;

type FileMap = BTreeMap<String, Arc<RwLock<Vec<u8>>>>;

/// Heap-backed environment; file contents live in a shared map so multiple
/// handles observe the same bytes, like a filesystem.
#[derive(Clone, Default)]
pub struct MemEnv {
    files: Arc<RwLock<FileMap>>,
    stats: Arc<StoreStats>,
}

impl MemEnv {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request statistics for this environment.
    pub fn stats(&self) -> &Arc<StoreStats> {
        &self.stats
    }

    fn get(&self, name: &str) -> Result<Arc<RwLock<Vec<u8>>>> {
        self.files.read().get(name).cloned().ok_or_else(|| StorageError::NotFound(name.to_string()))
    }
}

impl Env for MemEnv {
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let buf = Arc::new(RwLock::new(Vec::new()));
        self.files.write().insert(name.to_string(), buf.clone());
        Ok(Box::new(MemWritable { buf, stats: self.stats.clone() }))
    }

    fn open_appendable(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let buf = {
            let mut files = self.files.write();
            files.entry(name.to_string()).or_default().clone()
        };
        Ok(Box::new(MemWritable { buf, stats: self.stats.clone() }))
    }

    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>> {
        let buf = self.get(name)?;
        Ok(Arc::new(MemRandom { buf, stats: self.stats.clone() }))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> Result<()> {
        self.files.write().insert(name.to_string(), Arc::new(RwLock::new(data.to_vec())));
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.files.write().remove(name).ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        self.stats.record_delete();
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut files = self.files.write();
        let buf = files.remove(from).ok_or_else(|| StorageError::NotFound(from.to_string()))?;
        files.insert(to.to_string(), buf);
        Ok(())
    }

    fn exists(&self, name: &str) -> Result<bool> {
        Ok(self.files.read().contains_key(name))
    }

    fn size(&self, name: &str) -> Result<u64> {
        Ok(self.get(name)?.read().len() as u64)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self.files.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect())
    }
}

struct MemWritable {
    buf: Arc<RwLock<Vec<u8>>>,
    stats: Arc<StoreStats>,
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.buf.write().extend_from_slice(data);
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> Result<u64> {
        Ok(self.len())
    }

    fn len(&self) -> u64 {
        self.buf.read().len() as u64
    }
}

struct MemRandom {
    buf: Arc<RwLock<Vec<u8>>>,
    stats: Arc<StoreStats>,
}

impl RandomAccessFile for MemRandom {
    fn read_at(&self, offset: u64, out: &mut [u8]) -> Result<usize> {
        let buf = self.buf.read();
        let off = offset.min(buf.len() as u64) as usize;
        let n = out.len().min(buf.len() - off);
        out[..n].copy_from_slice(&buf[off..off + n]);
        self.stats.record_read(n as u64);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.buf.read().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let env = MemEnv::new();
        let mut w = env.new_writable("f").unwrap();
        w.append(b"abcdef").unwrap();
        w.finish().unwrap();
        let r = env.open_random("f").unwrap();
        assert_eq!(r.read_exact_at(2, 3).unwrap(), b"cde");
    }

    #[test]
    fn handles_share_contents() {
        let env = MemEnv::new();
        let mut w = env.new_writable("f").unwrap();
        w.append(b"x").unwrap();
        // A reader opened mid-write still observes appended bytes, matching
        // filesystem semantics the WAL relies on.
        let r = env.open_random("f").unwrap();
        w.append(b"y").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.read_exact_at(0, 2).unwrap(), b"xy");
    }

    #[test]
    fn rename_and_delete() {
        let env = MemEnv::new();
        env.write_all("a", b"1").unwrap();
        env.rename("a", "b").unwrap();
        assert!(!env.exists("a").unwrap());
        assert_eq!(env.read_all("b").unwrap(), b"1");
        env.delete("b").unwrap();
        assert!(matches!(env.delete("b"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn list_prefix() {
        let env = MemEnv::new();
        env.write_all("wal/1", b"").unwrap();
        env.write_all("wal/2", b"").unwrap();
        env.write_all("sst/3", b"").unwrap();
        assert_eq!(env.list("wal/").unwrap(), vec!["wal/1".to_string(), "wal/2".to_string()]);
    }

    #[test]
    fn clone_shares_the_filesystem() {
        let env = MemEnv::new();
        let env2 = env.clone();
        env.write_all("f", b"shared").unwrap();
        assert_eq!(env2.read_all("f").unwrap(), b"shared");
    }
}
