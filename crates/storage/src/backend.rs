//! Backend abstractions: file-oriented [`Env`] for the local tier and
//! object-oriented [`ObjectStore`] for the cloud tier.
//!
//! The LSM engine (crate `lsm`) is written entirely against [`Env`], exactly
//! as RocksDB is written against its `Env`. RocksMash's tiering layer then
//! moves finished SSTables between an `Env` (local) and an [`ObjectStore`]
//! (cloud) and serves reads from either through [`RandomAccessFile`].

use std::sync::Arc;

use crate::error::Result;

/// A file being written sequentially (WAL, MANIFEST, or an SSTable under
/// construction). Mirrors RocksDB's `WritableFile`.
pub trait WritableFile: Send {
    /// Append `data` at the current end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;

    /// Durably persist all appended data (fsync for filesystem backends).
    fn sync(&mut self) -> Result<()>;

    /// Flush, sync and close the file, returning its final length in bytes.
    fn finish(&mut self) -> Result<u64>;

    /// Bytes appended so far.
    fn len(&self) -> u64;

    /// True when nothing has been appended yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A finished immutable file readable at arbitrary offsets (SSTables).
pub trait RandomAccessFile: Send + Sync {
    /// Read up to `buf.len()` bytes starting at `offset`; returns the number
    /// of bytes read (short only at end of file).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize>;

    /// Total length of the file in bytes.
    fn len(&self) -> u64;

    /// True when the file holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read exactly `len` bytes at `offset` into a fresh buffer, failing on
    /// a short read.
    fn read_exact_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        let n = self.read_at(offset, &mut buf)?;
        if n != len {
            return Err(crate::StorageError::corruption(format!(
                "short read: wanted {len} bytes at {offset}, got {n}"
            )));
        }
        Ok(buf)
    }

    /// Vectored read: fetch every `(offset, len)` range, returning the
    /// buffers in request order. The default issues one `read_exact_at` per
    /// range; latency-bound backends (the cloud tier) override this to
    /// coalesce adjacent ranges into fewer billed requests.
    fn read_ranges(&self, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        ranges.iter().map(|&(offset, len)| self.read_exact_at(offset, len)).collect()
    }

    /// [`read_ranges`](Self::read_ranges) issued on behalf of speculative
    /// readahead rather than a demand read. Caching wrappers use the
    /// distinction to admit the fetched bytes at a lower cache priority;
    /// plain backends treat both identically.
    fn prefetch_ranges(&self, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        self.read_ranges(ranges)
    }
}

/// A file-system-like environment: the local storage tier.
///
/// Names are relative, `/`-separated paths; implementations create parent
/// directories implicitly.
pub trait Env: Send + Sync {
    /// Create (truncate) a file for sequential writing.
    fn new_writable(&self, name: &str) -> Result<Box<dyn WritableFile>>;

    /// Open an existing file for appending; creates it when absent.
    fn open_appendable(&self, name: &str) -> Result<Box<dyn WritableFile>>;

    /// Open an existing file for random-access reads.
    fn open_random(&self, name: &str) -> Result<Arc<dyn RandomAccessFile>>;

    /// Read the whole file into memory.
    fn read_all(&self, name: &str) -> Result<Vec<u8>> {
        let f = self.open_random(name)?;
        f.read_exact_at(0, f.len() as usize)
    }

    /// Write an entire file atomically-enough for crash tests (write then
    /// rename for filesystem backends).
    fn write_all(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Delete a file. Deleting a missing file is an error.
    fn delete(&self, name: &str) -> Result<()>;

    /// Atomically rename a file, replacing any existing target.
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// Whether the file exists.
    fn exists(&self, name: &str) -> Result<bool>;

    /// Size of the file in bytes.
    fn size(&self, name: &str) -> Result<u64>;

    /// All file names (relative paths) that start with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Total bytes currently stored under this environment.
    fn total_bytes(&self) -> Result<u64> {
        let mut sum = 0;
        for name in self.list("")? {
            sum += self.size(&name)?;
        }
        Ok(sum)
    }
}

/// An object store: the cloud storage tier.
///
/// Objects are immutable blobs written in one shot (like S3 `PUT`) and read
/// either fully or by byte range (like S3 range `GET`). There is no append.
pub trait ObjectStore: Send + Sync {
    /// Upload a complete object, replacing any existing object of that key.
    fn put(&self, key: &str, data: &[u8]) -> Result<()>;

    /// Download a complete object.
    fn get(&self, key: &str) -> Result<Vec<u8>>;

    /// Download `len` bytes of the object starting at `offset` (range GET).
    fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Vectored range GET: fetch every `(offset, len)` range of one object,
    /// returning buffers in request order. The default issues one
    /// `get_range` per range; the simulated cloud overrides this to merge
    /// adjacent/near-adjacent ranges into one billed GET per run.
    fn get_ranges(&self, key: &str, ranges: &[(u64, usize)]) -> Result<Vec<Vec<u8>>> {
        ranges.iter().map(|&(offset, len)| self.get_range(key, offset, len)).collect()
    }

    /// Delete an object. Deleting a missing object is an error.
    fn delete(&self, key: &str) -> Result<()>;

    /// Whether the object exists (HEAD request).
    fn exists(&self, key: &str) -> Result<bool>;

    /// Object size in bytes (HEAD request).
    fn size(&self, key: &str) -> Result<u64>;

    /// Keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Open an object as a random-access file. Every `read_at` call pays the
    /// store's request latency, exactly like issuing range GETs.
    fn open_object(&self, key: &str) -> Result<Arc<dyn RandomAccessFile>>;

    /// Total bytes stored across all objects.
    fn total_bytes(&self) -> Result<u64>;
}
