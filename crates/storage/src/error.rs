//! Error types shared by every storage backend.

use std::fmt;

/// Result alias used across the storage crate and its consumers.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Unified error for local-file and cloud-object operations.
#[derive(Debug)]
pub enum StorageError {
    /// The named file or object does not exist.
    NotFound(String),
    /// An underlying I/O failure from the operating system.
    Io(std::io::Error),
    /// Stored bytes failed a checksum or structural validation.
    Corruption(String),
    /// A fault injected by a [`crate::FailurePolicy`] (used by reliability
    /// tests to emulate transient cloud request failures).
    Injected(String),
    /// A deterministic fault injected by an armed
    /// [`crate::failpoint`](crate::failpoint) site (the payload is the site
    /// name). Classified permanent: a failpoint models "the process dies
    /// here", which retrying must not paper over.
    FailPoint(String),
    /// An operation exceeded its [`crate::RetryPolicy`] deadline. Transient
    /// by nature, but the retry layer that produced it has already given
    /// up, so it surfaces to the caller.
    Timeout(String),
    /// The operation is not supported by this backend (e.g. appending to a
    /// cloud object).
    Unsupported(&'static str),
    /// A caller-supplied argument was invalid.
    InvalidArgument(String),
}

impl StorageError {
    /// True when retrying the same request may succeed (transient faults).
    /// Everything else — missing objects, corruption, failpoints, caller
    /// misuse — is permanent: retry loops on those can only waste the
    /// retry budget or mask real damage.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Injected(_) | StorageError::Timeout(_))
    }

    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        StorageError::Corruption(msg.into())
    }

    /// Clone-equivalent for an error type that cannot derive `Clone`
    /// (`std::io::Error` is not `Clone`). Group commit fans one leader
    /// result out to every follower in the group, so each needs its own
    /// copy; an `Io` variant is reconstructed from its kind and message.
    pub fn duplicate(&self) -> StorageError {
        match self {
            StorageError::NotFound(s) => StorageError::NotFound(s.clone()),
            StorageError::Io(e) => StorageError::Io(std::io::Error::new(e.kind(), e.to_string())),
            StorageError::Corruption(s) => StorageError::Corruption(s.clone()),
            StorageError::Injected(s) => StorageError::Injected(s.clone()),
            StorageError::FailPoint(s) => StorageError::FailPoint(s.clone()),
            StorageError::Timeout(s) => StorageError::Timeout(s.clone()),
            StorageError::Unsupported(op) => StorageError::Unsupported(op),
            StorageError::InvalidArgument(s) => StorageError::InvalidArgument(s.clone()),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(name) => write!(f, "not found: {name}"),
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Corruption(msg) => write!(f, "corruption: {msg}"),
            StorageError::Injected(msg) => write!(f, "injected fault: {msg}"),
            StorageError::FailPoint(site) => write!(f, "failpoint hit: {site}"),
            StorageError::Timeout(msg) => write!(f, "timeout: {msg}"),
            StorageError::Unsupported(op) => write!(f, "unsupported operation: {op}"),
            StorageError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            StorageError::NotFound(e.to_string())
        } else {
            StorageError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_found_from_io() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: StorageError = io.into();
        assert!(matches!(err, StorageError::NotFound(_)));
    }

    #[test]
    fn other_io_maps_to_io() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        let err: StorageError = io.into();
        assert!(matches!(err, StorageError::Io(_)));
    }

    #[test]
    fn transient_classification() {
        assert!(StorageError::Injected("x".into()).is_transient());
        assert!(StorageError::Timeout("slow".into()).is_transient());
        assert!(!StorageError::NotFound("x".into()).is_transient());
        assert!(!StorageError::corruption("bad crc").is_transient());
        assert!(!StorageError::FailPoint("cloud_put".into()).is_transient());
        assert!(!StorageError::InvalidArgument("x".into()).is_transient());
    }

    #[test]
    fn display_is_descriptive() {
        let s = StorageError::corruption("bad block").to_string();
        assert!(s.contains("bad block"));
        let s = StorageError::Unsupported("append").to_string();
        assert!(s.contains("append"));
    }
}
