//! Deterministic failpoint injection (sled/TiKV `fail-rs` style).
//!
//! Probabilistic injection ([`crate::FailurePolicy`]) answers "does the
//! store survive a noisy cloud?"; failpoints answer the sharper question
//! "what happens if we die *exactly here*?". Every critical transition in
//! the store calls [`fail_point`] with a stable site name; tests arm a
//! site with a [`FailAction`] and drive the workload until it fires.
//!
//! The registry is process-global on purpose: failpoints must be reachable
//! from background flush/compaction threads that tests cannot thread state
//! into. Tests that arm failpoints therefore serialize themselves (see
//! `tests/tests/crash_torture.rs`) and call [`disarm_all`] when done.
//!
//! Unarmed cost: a single relaxed atomic load and a predictable branch —
//! no locks, no map lookup, no allocation (verified by the
//! `failpoint_overhead` criterion bench).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::{Result, StorageError};

/// What an armed failpoint does when execution reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Registered but inert (counts hits only).
    Off,
    /// Fail every hit with [`StorageError::FailPoint`].
    ReturnErr,
    /// Panic the calling thread (exercises unwind paths).
    Panic,
    /// Delay the calling thread (races, timeout paths).
    Sleep(Duration),
    /// Pass the first `n-1` hits, then fail every hit from the `n`-th on.
    /// This is the crash-matrix workhorse: it lets a workload make real
    /// progress before the "crash".
    CrashAfter(u64),
}

#[derive(Debug)]
struct Entry {
    action: FailAction,
    hits: u64,
    /// Set the first time this entry actually injects a failure (not by
    /// passing hits of a `CrashAfter` that has not matured).
    triggered: bool,
}

/// Number of registered entries whose action is not `Off`. The hot-path
/// guard: when zero, [`fail_point`] returns without touching the registry.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn is_armed(action: &FailAction) -> bool {
    !matches!(action, FailAction::Off)
}

/// Arm (or re-arm) the failpoint `name` with `action`, resetting its hit
/// count and triggered flag.
pub fn arm(name: &str, action: FailAction) {
    let mut reg = registry().lock();
    let was_armed = reg.get(name).map(|e| is_armed(&e.action)).unwrap_or(false);
    reg.insert(name.to_string(), Entry { action, hits: 0, triggered: false });
    match (was_armed, is_armed(&action)) {
        (false, true) => {
            ARMED.fetch_add(1, Ordering::Release);
        }
        (true, false) => {
            ARMED.fetch_sub(1, Ordering::Release);
        }
        _ => {}
    }
}

/// Disarm the failpoint `name` (keeps its hit statistics readable).
pub fn disarm(name: &str) {
    let mut reg = registry().lock();
    if let Some(entry) = reg.get_mut(name) {
        if is_armed(&entry.action) {
            ARMED.fetch_sub(1, Ordering::Release);
        }
        entry.action = FailAction::Off;
    }
}

/// Disarm every failpoint and clear the registry. Tests call this before
/// handing the process to the next test.
pub fn disarm_all() {
    let mut reg = registry().lock();
    let armed = reg.values().filter(|e| is_armed(&e.action)).count();
    ARMED.fetch_sub(armed, Ordering::Release);
    reg.clear();
}

/// Times execution reached `name` while it was registered.
pub fn hits(name: &str) -> u64 {
    registry().lock().get(name).map(|e| e.hits).unwrap_or(0)
}

/// Whether `name` has actually injected at least one failure since it was
/// armed. Crash harnesses poll this to detect failures swallowed by
/// best-effort paths (cache fills) or background threads.
pub fn triggered(name: &str) -> bool {
    registry().lock().get(name).map(|e| e.triggered).unwrap_or(false)
}

/// Evaluate the failpoint `name`. The no-op branch when nothing is armed
/// anywhere in the process is a single atomic load.
#[inline]
pub fn fail_point(name: &str) -> Result<()> {
    if ARMED.load(Ordering::Acquire) == 0 {
        return Ok(());
    }
    fail_point_slow(name)
}

#[cold]
fn fail_point_slow(name: &str) -> Result<()> {
    let action = {
        let mut reg = registry().lock();
        let Some(entry) = reg.get_mut(name) else { return Ok(()) };
        entry.hits += 1;
        match entry.action {
            FailAction::Off => return Ok(()),
            FailAction::ReturnErr => {
                entry.triggered = true;
                return Err(StorageError::FailPoint(name.to_string()));
            }
            FailAction::CrashAfter(n) => {
                if entry.hits >= n {
                    entry.triggered = true;
                    return Err(StorageError::FailPoint(name.to_string()));
                }
                return Ok(());
            }
            // Actions that run code outside the lock.
            other => {
                entry.triggered = true;
                other
            }
        }
    };
    match action {
        FailAction::Panic => panic!("failpoint '{name}' panic"),
        FailAction::Sleep(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        _ => unreachable!("handled under the lock"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// Failpoints are process-global; these tests must not interleave.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_is_ok_and_uncounted() {
        let _g = GUARD.lock();
        disarm_all();
        assert!(fail_point("nowhere").is_ok());
        assert_eq!(hits("nowhere"), 0);
    }

    #[test]
    fn return_err_fires_every_time_and_is_permanent() {
        let _g = GUARD.lock();
        disarm_all();
        arm("site_a", FailAction::ReturnErr);
        for _ in 0..3 {
            let err = fail_point("site_a").unwrap_err();
            assert!(matches!(err, StorageError::FailPoint(_)));
            assert!(!err.is_transient(), "failpoint errors must not be retried");
        }
        assert_eq!(hits("site_a"), 3);
        assert!(triggered("site_a"));
        disarm_all();
    }

    #[test]
    fn crash_after_passes_early_hits() {
        let _g = GUARD.lock();
        disarm_all();
        arm("site_b", FailAction::CrashAfter(3));
        assert!(fail_point("site_b").is_ok());
        assert!(fail_point("site_b").is_ok());
        assert!(!triggered("site_b"));
        assert!(fail_point("site_b").is_err());
        assert!(triggered("site_b"));
        // Stays failed once matured.
        assert!(fail_point("site_b").is_err());
        disarm_all();
    }

    #[test]
    fn disarm_restores_passthrough() {
        let _g = GUARD.lock();
        disarm_all();
        arm("site_c", FailAction::ReturnErr);
        assert!(fail_point("site_c").is_err());
        disarm("site_c");
        assert!(fail_point("site_c").is_ok());
        disarm_all();
    }

    #[test]
    fn sleep_delays_the_caller() {
        let _g = GUARD.lock();
        disarm_all();
        arm("site_d", FailAction::Sleep(Duration::from_millis(25)));
        let start = std::time::Instant::now();
        fail_point("site_d").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert!(triggered("site_d"));
        disarm_all();
    }

    #[test]
    fn panic_action_panics() {
        let _g = GUARD.lock();
        disarm_all();
        arm("site_e", FailAction::Panic);
        let caught = std::panic::catch_unwind(|| {
            let _ = fail_point("site_e");
        });
        assert!(caught.is_err());
        disarm_all();
    }

    #[test]
    fn rearming_resets_counters() {
        let _g = GUARD.lock();
        disarm_all();
        arm("site_f", FailAction::CrashAfter(2));
        let _ = fail_point("site_f");
        let _ = fail_point("site_f");
        assert!(triggered("site_f"));
        arm("site_f", FailAction::CrashAfter(2));
        assert_eq!(hits("site_f"), 0);
        assert!(!triggered("site_f"));
        assert!(fail_point("site_f").is_ok());
        disarm_all();
    }
}
