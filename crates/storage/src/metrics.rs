//! Request-level statistics shared by all backends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Lock-free counters describing the traffic a backend has served.
///
/// All counters use relaxed ordering: they are monotonic statistics with no
/// cross-thread happens-before requirements (Rust Atomics & Locks ch. 2,
/// "Example: Statistics").
#[derive(Debug, Default)]
pub struct StoreStats {
    reads: AtomicU64,
    writes: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    simulated_wait_ns: AtomicU64,
    coalesced_gets: AtomicU64,
    requests_saved: AtomicU64,
}

impl StoreStats {
    /// New zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read request of `bytes`.
    pub fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a write request of `bytes`.
    pub fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a delete request.
    pub fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record time spent sleeping in the latency simulator.
    pub fn record_wait(&self, d: Duration) {
        self.simulated_wait_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record that `merged` caller ranges were served by one coalesced GET.
    pub fn record_coalesced_get(&self, merged: u64) {
        self.coalesced_gets.fetch_add(1, Ordering::Relaxed);
        self.requests_saved.fetch_add(merged.saturating_sub(1), Ordering::Relaxed);
    }

    /// Immutable snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            simulated_wait_ns: self.simulated_wait_ns.load(Ordering::Relaxed),
            coalesced_gets: self.coalesced_gets.load(Ordering::Relaxed),
            requests_saved: self.requests_saved.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.simulated_wait_ns.store(0, Ordering::Relaxed);
        self.coalesced_gets.store(0, Ordering::Relaxed);
        self.requests_saved.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`StoreStats`] block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Delete requests served.
    pub deletes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Nanoseconds spent in simulated latency sleeps.
    pub simulated_wait_ns: u64,
    /// Coalesced vectored GETs issued (each covers ≥1 caller ranges).
    #[serde(default)]
    pub coalesced_gets: u64,
    /// Requests avoided by coalescing (caller ranges − billed GETs).
    #[serde(default)]
    pub requests_saved: u64,
}

impl StatsSnapshot {
    /// Difference since an earlier snapshot (for per-phase accounting).
    ///
    /// Saturating: if the counters were [`StoreStats::reset`] between the
    /// two snapshots, `earlier` can exceed `self`; clamping to zero beats
    /// a debug-build overflow panic for a statistics accessor.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            deletes: self.deletes.saturating_sub(earlier.deletes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            simulated_wait_ns: self.simulated_wait_ns.saturating_sub(earlier.simulated_wait_ns),
            coalesced_gets: self.coalesced_gets.saturating_sub(earlier.coalesced_gets),
            requests_saved: self.requests_saved.saturating_sub(earlier.requests_saved),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StoreStats::new();
        s.record_read(10);
        s.record_read(20);
        s.record_write(5);
        s.record_delete();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.bytes_read, 30);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.bytes_written, 5);
        assert_eq!(snap.deletes, 1);
    }

    #[test]
    fn delta_between_snapshots() {
        let s = StoreStats::new();
        s.record_read(100);
        let a = s.snapshot();
        s.record_read(50);
        s.record_write(7);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.reads, 1);
        assert_eq!(d.bytes_read, 50);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = std::sync::Arc::new(StoreStats::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record_read(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().reads, 80_000);
    }

    #[test]
    fn delta_after_reset_saturates_instead_of_panicking() {
        let s = StoreStats::new();
        s.record_read(100);
        s.record_write(7);
        s.record_coalesced_get(4);
        let before = s.snapshot();
        s.reset();
        s.record_read(1);
        let after = s.snapshot();
        // `after` is behind `before` on most counters; the delta must clamp
        // to zero, not underflow.
        let d = after.delta_since(&before);
        assert_eq!(d.reads, 0);
        assert_eq!(d.bytes_read, 0);
        assert_eq!(d.writes, 0);
        assert_eq!(d.coalesced_gets, 0);
        assert_eq!(d.requests_saved, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = StoreStats::new();
        s.record_write(9);
        s.record_wait(Duration::from_millis(1));
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
