//! Storage substrate for the RocksMash reproduction.
//!
//! This crate provides the two storage tiers the paper integrates:
//!
//! * **Local storage** — fast, small, expensive: [`LocalEnv`] (filesystem)
//!   and [`MemEnv`] (in-memory, for tests), both implementing the [`Env`]
//!   file abstraction the LSM engine is written against.
//! * **Cloud storage** — slow, large, cheap: [`CloudStore`], a simulated
//!   object store with a configurable [`LatencyModel`], a [`CostModel`]
//!   with request/egress/capacity pricing, request statistics, and
//!   probabilistic [`FailurePolicy`] fault injection.
//!
//! The paper evaluates on Amazon-S3-class object storage; we substitute a
//! simulator so experiments are reproducible on a laptop while preserving
//! the *relative* latency and cost gap between tiers (see DESIGN.md).

pub mod backend;
pub mod cloud;
pub mod cost;
pub mod error;
pub mod failpoint;
pub mod failure;
pub mod latency;
pub mod limiter;
pub mod local;
pub mod memory;
pub mod metrics;
pub mod retry;

pub use backend::{Env, ObjectStore, RandomAccessFile, WritableFile};
pub use cloud::{CloudConfig, CloudStore};
pub use cost::{CostModel, CostReport, CostTracker};
pub use error::{Result, StorageError};
pub use failpoint::FailAction;
pub use failure::FailurePolicy;
pub use latency::LatencyModel;
pub use limiter::RateLimiter;
pub use local::LocalEnv;
pub use memory::MemEnv;
pub use metrics::{StatsSnapshot, StoreStats};
pub use retry::{Retrier, RetryPolicy, RetrySnapshot};
