//! Write throughput while the background pool is busy compacting.
//!
//! Tiny buffers and a low L0 trigger keep flushes and compactions running
//! for the whole measurement, so the numbers capture the foreground cost
//! of backpressure (memtable seals, queue-full waits, L0 stalls) rather
//! than a quiet-tree fast path. Runs once with a single background job
//! and once with a pool of four, so the delta shows what parallel
//! flush/compaction scheduling buys the writer.
//!
//! Besides the criterion timings, each arm appends its full
//! [`rocksmash::SchemeReport`] — including `stall_ns`, `flush_retries`,
//! `imm_queue_peak`, and `compaction_parallelism_peak` — to
//! `results/BENCH_write_stall.json` for the figure scripts.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lsm::Options;
use rocksmash::{Scheme, TieredConfig, TieredDb};
use storage::MemEnv;

/// Keys overwritten round-robin per measured batch: small enough that one
/// iteration is quick, large enough to keep sealing memtables.
const BATCH: usize = 400;
/// Keyspace the batches cycle through; overwrites keep every level churning.
const KEYSPACE: usize = 4_096;
const VALUE: [u8; 256] = [0x5a; 256];

/// A store tuned so the write stream continuously triggers flushes and
/// compactions with the given background pool size.
fn churn_db(jobs: usize) -> TieredDb {
    let config = TieredConfig {
        options: Options {
            write_buffer_size: 16 << 10,
            target_file_size: 8 << 10,
            max_bytes_for_level_base: 32 << 10,
            l0_compaction_trigger: 2,
            max_background_jobs: jobs,
            ..Options::small_for_tests()
        },
        ..TieredConfig::small_for_tests()
    };
    Scheme::LocalOnly.open(Arc::new(MemEnv::new()), config).expect("open")
}

fn bench_write_throughput_under_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_throughput_under_compaction");
    g.throughput(Throughput::Elements(BATCH as u64));
    for jobs in [1usize, 4] {
        let db = churn_db(jobs);
        // Pre-churn so the tree is already deep and compacting when
        // measurement starts.
        for i in 0..KEYSPACE {
            db.put(format!("key{i:06}").as_bytes(), &VALUE).expect("fill");
        }
        let mut next = 0usize;
        g.bench_function(format!("jobs{jobs}"), |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    next = (next + 1) % KEYSPACE;
                    db.put(black_box(format!("key{next:06}").as_bytes()), &VALUE).expect("put");
                }
            })
        });
        db.flush().expect("flush");
        db.wait_for_compactions().expect("settle");
        let report = db.report().expect("report");
        bench::emit_scheme_report("write_stall", &format!("jobs={jobs}"), &report, &[]);
        db.close().expect("close");
    }
    g.finish();
}

criterion_group!(benches, bench_write_throughput_under_compaction);
criterion_main!(benches);
