//! seekrandom throughput vs scan length over a cloud-resident store, with
//! the scan's end key pushed down as an iterator upper bound.
//!
//! The bounded-scan path exists so finite scans stop paying for blocks
//! they will never read: the upper bound clamps both iteration and the
//! readahead watermark, so the last prefetch batch ends at the scan's
//! final block instead of overshooting into pure-egress territory. This
//! bench measures records/sec at scan lengths 10 / 100 / 1000 with
//! readahead on, bounded vs unbounded arms side by side — long bounded
//! scans should match or beat unbounded while issuing strictly fewer
//! cloud blocks.
//!
//! Besides the criterion timings, each arm appends its full
//! [`rocksmash::SchemeReport`] — including the new
//! `prefetch_wasted_blocks` counter, which should stay ~0 on the bounded
//! arms — to `results/BENCH_E10-scan.json` for the figure scripts.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lsm::Options;
use rocksmash::{Scheme, TieredConfig, TieredDb};
use storage::{CloudConfig, LatencyModel, MemEnv};
use workloads::keys::user_key;

/// Records loaded before the measured scans.
const RECORDS: u64 = 20_000;
/// Value payload bytes.
const VALUE_SIZE: usize = 100;
/// Readahead depth for every arm (the sweep varies bounds, not depth).
const READAHEAD_BLOCKS: usize = 8;

/// A cloud-resident store with small blocks/files so scans cross many
/// block and SST boundaries, and a mild simulated per-request latency so
/// saved cloud requests show up in the timings.
fn cloud_db() -> TieredDb {
    let config = TieredConfig {
        options: Options {
            write_buffer_size: 256 << 10,
            target_file_size: 256 << 10,
            block_size: 4096,
            ..Options::small_for_tests()
        },
        cloud: CloudConfig {
            latency: LatencyModel { base_us: 50, bandwidth_mib_s: 10_000.0, jitter_frac: 0.0 },
            ..CloudConfig::instant()
        },
        readahead_blocks: READAHEAD_BLOCKS,
        ..TieredConfig::small_for_tests()
    };
    let db = Scheme::CloudOnly.open(Arc::new(MemEnv::new()), config).expect("open");
    let value = vec![0x42u8; VALUE_SIZE];
    for i in 0..RECORDS {
        db.put(&user_key(i), &value).expect("fill");
    }
    db.flush().expect("flush");
    db.wait_for_compactions().expect("settle");
    db
}

/// Deterministic scan start for round `i`: strided so consecutive rounds
/// touch different regions and the block cache cannot serve everything.
fn start_for(i: u64, len: usize) -> u64 {
    (i.wrapping_mul(7919)) % (RECORDS - len as u64)
}

fn bench_seekrandom_scan_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("seekrandom_scan_length");
    g.sample_size(10);
    for &len in &[10usize, 100, 1000] {
        for bounded in [false, true] {
            let db = cloud_db();
            let arm = if bounded { "bounded" } else { "unbounded" };
            g.throughput(Throughput::Elements(len as u64));
            let mut i = 0u64;
            g.bench_function(format!("len{len}/{arm}"), |b| {
                b.iter(|| {
                    i += 1;
                    let start = start_for(i, len);
                    let rows = if bounded {
                        db.scan_bounded(
                            black_box(&user_key(start)),
                            &user_key(start + len as u64),
                            len,
                        )
                    } else {
                        db.scan(black_box(&user_key(start)), len)
                    }
                    .expect("scan");
                    assert_eq!(rows.len(), len);
                })
            });
            let report = db.report().expect("report");
            bench::emit_scheme_report("E10-scan", &format!("len={len} {arm}"), &report, &[]);
            db.close().expect("close");
        }
    }
    g.finish();
}

criterion_group!(benches, bench_seekrandom_scan_length);
criterion_main!(benches);
