//! Criterion check that per-operation perf contexts cost nothing when
//! off and stay cheap when on: point reads against the same store with
//! perf capture disabled, sampled (every 64th op), and always-on. The
//! acceptance bar is < 3% regression with capture disabled.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsm::ReadOptions;
use rocksmash::{TieredConfig, TieredDb};
use storage::{Env, MemEnv};

const RECORDS: u64 = 10_000;

fn key(i: u64) -> Vec<u8> {
    format!("key{i:08}").into_bytes()
}

fn open_db(perf_sample_every: u64) -> TieredDb {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let config = TieredConfig { perf_sample_every, ..TieredConfig::small_for_tests() };
    let db = TieredDb::open(env, config).expect("open");
    for i in 0..RECORDS {
        db.put(&key(i), format!("value{i:08}").as_bytes()).expect("put");
    }
    db.flush().expect("flush");
    db.wait_for_compactions().expect("settle");
    db
}

fn bench_perf_context_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("perf_context_overhead");

    // Capture disabled entirely: the baseline every other row is judged
    // against. One branch per stage hook.
    {
        let db = open_db(0);
        let mut i = 0u64;
        g.bench_function("get_perf_off", |b| {
            b.iter(|| {
                i = (i + 7919) % RECORDS;
                db.get(black_box(&key(i))).expect("get")
            })
        });
        db.close().expect("close");
    }

    // Sampled: every 64th get pays for a full capture, the rest take the
    // disabled path.
    {
        let db = open_db(64);
        let mut i = 0u64;
        g.bench_function("get_perf_sampled_64", |b| {
            b.iter(|| {
                i = (i + 7919) % RECORDS;
                db.get(black_box(&key(i))).expect("get")
            })
        });
        db.close().expect("close");
    }

    // Always-on: explicit per-call capture, the worst case.
    {
        let db = open_db(0);
        let opts = ReadOptions::default().with_perf_context();
        let mut i = 0u64;
        g.bench_function("get_perf_always", |b| {
            b.iter(|| {
                i = (i + 7919) % RECORDS;
                db.get_with(black_box(opts.clone()), black_box(&key(i))).expect("get")
            })
        });
        db.close().expect("close");
    }

    g.finish();
}

criterion_group!(benches, bench_perf_context_overhead);
criterion_main!(benches);
