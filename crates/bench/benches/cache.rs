//! Criterion micro-benchmarks comparing the RocksMash persistent cache
//! with the conventional baseline on the operations the read path issues.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mashcache::cache::{CacheConfig, PersistentBlockCache, SLOT_HEADER};
use mashcache::meta::PackedIndex;
use mashcache::{BaselineCache, MashCache, MemCacheStorage};

const SLOT: u32 = 4096 + SLOT_HEADER as u32;

fn mash(capacity: usize) -> MashCache {
    MashCache::new(
        Arc::new(MemCacheStorage::new(capacity)),
        CacheConfig {
            slot_size: SLOT,
            slots_per_extent: 64,
            admission: false,
            ..CacheConfig::default()
        },
    )
}

fn baseline(capacity: usize) -> BaselineCache {
    BaselineCache::new(Arc::new(MemCacheStorage::new(capacity)), SLOT)
}

fn warm(cache: &dyn PersistentBlockCache, blocks: u64) {
    let payload = vec![0u8; 4096];
    for i in 0..blocks {
        cache.put(i / 256, (i % 256) * 4096, &payload, 3);
    }
}

fn bench_get_hit(c: &mut Criterion) {
    let capacity = 64 << 20;
    let m = mash(capacity);
    let b_cache = baseline(capacity);
    warm(&m, 10_000);
    warm(&b_cache, 10_000);
    let mut g = c.benchmark_group("cache_get_hit");
    let mut i = 0u64;
    g.bench_function("mash", |bch| {
        bch.iter(|| {
            i = (i + 7919) % 10_000;
            m.get(i / 256, (i % 256) * 4096).expect("hit")
        })
    });
    let mut j = 0u64;
    g.bench_function("conventional", |bch| {
        bch.iter(|| {
            j = (j + 7919) % 10_000;
            b_cache.get(j / 256, (j % 256) * 4096).expect("hit")
        })
    });
    g.finish();
}

fn bench_put(c: &mut Criterion) {
    let payload = vec![0u8; 4096];
    let mut g = c.benchmark_group("cache_put_1k_blocks");
    g.bench_function("mash", |bch| {
        bch.iter_batched(
            || mash(64 << 20),
            |m| {
                for i in 0..1000u64 {
                    m.put(i / 256, (i % 256) * 4096, &payload, 3);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("conventional", |bch| {
        bch.iter_batched(
            || baseline(64 << 20),
            |b| {
                for i in 0..1000u64 {
                    b.put(i / 256, (i % 256) * 4096, &payload, 3);
                }
                b
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_invalidate(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_invalidate_file");
    g.bench_function("mash_extent_granular", |bch| {
        bch.iter_batched(
            || {
                let m = mash(64 << 20);
                warm(&m, 10_000);
                m
            },
            |m| {
                for file in 0..40u64 {
                    m.invalidate_file(file);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("conventional_full_scan", |bch| {
        bch.iter_batched(
            || {
                let b = baseline(64 << 20);
                warm(&b, 10_000);
                b
            },
            |b| {
                for file in 0..40u64 {
                    b.invalidate_file(file);
                }
                b
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("packed_index");
    g.bench_function("insert_10k", |bch| {
        bch.iter_batched(
            PackedIndex::new,
            |mut idx| {
                for i in 0..10_000u64 {
                    idx.insert(i * 4096, (i % 1_000_000) as u32);
                }
                idx
            },
            BatchSize::SmallInput,
        )
    });
    let mut idx = PackedIndex::new();
    for i in 0..10_000u64 {
        idx.insert(i * 4096, (i % 1_000_000) as u32);
    }
    let mut i = 0u64;
    g.bench_function("get", |bch| {
        bch.iter(|| {
            i = (i + 7919) % 10_000;
            idx.get(i * 4096).expect("present")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_get_hit, bench_put, bench_invalidate, bench_index);
criterion_main!(benches);
