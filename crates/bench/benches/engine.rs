//! Criterion micro-benchmarks for the LSM engine primitives: the
//! components whose constant factors determine write/read amplification
//! costs in every experiment.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lsm::memtable::MemTable;
use lsm::sstable::{Block, BlockBuilder, BloomFilter, Table, TableBuilder};
use lsm::types::{make_internal_key, make_lookup_key, ValueType};
use lsm::util::crc32c;
use lsm::wal::LogWriter;
use lsm::{Options, WriteBatch};
use rocksmash::{Scheme, TieredConfig, TieredDb};
use storage::{Env, MemEnv};

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    let mut g = c.benchmark_group("crc32c");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("4k_block", |b| b.iter(|| crc32c(black_box(&data))));
    g.finish();
}

fn bench_memtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("memtable");
    g.bench_function("insert_1k_entries", |b| {
        b.iter_batched(
            MemTable::new,
            |m| {
                for i in 0..1000u64 {
                    m.insert(i + 1, ValueType::Value, format!("key{i:08}").as_bytes(), b"value");
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    let table = Arc::new(MemTable::new());
    for i in 0..100_000u64 {
        table.insert(i + 1, ValueType::Value, format!("key{i:08}").as_bytes(), b"value");
    }
    let mut i = 0u64;
    g.bench_function("get_hot", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            table.get(format!("key{i:08}").as_bytes(), u64::MAX >> 9)
        })
    });
    g.finish();
}

fn bench_block(c: &mut Criterion) {
    let mut g = c.benchmark_group("block");
    g.bench_function("build_4k", |b| {
        b.iter(|| {
            let mut builder = BlockBuilder::new(16);
            for i in 0..64u64 {
                let k = make_internal_key(format!("key{i:08}").as_bytes(), i + 1, ValueType::Value);
                builder.add(&k, &[0u8; 32]);
            }
            builder.finish()
        })
    });
    let mut builder = BlockBuilder::new(16);
    for i in 0..64u64 {
        let k = make_internal_key(format!("key{i:08}").as_bytes(), i + 1, ValueType::Value);
        builder.add(&k, &[0u8; 32]);
    }
    let block = Arc::new(Block::new(builder.finish()).unwrap());
    let mut j = 0u64;
    g.bench_function("seek", |b| {
        b.iter(|| {
            j = (j + 17) % 64;
            let mut it = block.iter();
            lsm::iterator::InternalIterator::seek(
                &mut it,
                &make_lookup_key(format!("key{j:08}").as_bytes(), u64::MAX >> 9),
            )
            .unwrap();
            assert!(lsm::iterator::InternalIterator::valid(&it));
        })
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000).map(|i| format!("key{i:08}").into_bytes()).collect();
    let mut g = c.benchmark_group("bloom");
    g.bench_function("build_10k_keys", |b| {
        b.iter(|| BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10))
    });
    let filter = BloomFilter::build(keys.iter().map(|k| k.as_slice()), 10);
    let mut i = 0usize;
    g.bench_function("probe", |b| {
        b.iter(|| {
            i = (i + 31) % keys.len();
            filter.may_contain(black_box(&keys[i]))
        })
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.throughput(Throughput::Bytes(1024 * 64));
    g.bench_function("append_64_records_1k", |b| {
        b.iter_batched(
            || {
                let env = MemEnv::new();
                LogWriter::new(env.new_writable("log").unwrap())
            },
            |mut w| {
                let payload = vec![0u8; 1024];
                for _ in 0..64 {
                    w.add_record(&payload).unwrap();
                }
                w
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_table(c: &mut Criterion) {
    let env = MemEnv::new();
    let options = Options::default();
    let mut builder = TableBuilder::new(env.new_writable("t").unwrap(), options.clone());
    for i in 0..10_000u64 {
        let k = make_internal_key(format!("key{i:08}").as_bytes(), i + 1, ValueType::Value);
        builder.add(&k, &[7u8; 100]).unwrap();
    }
    builder.finish().unwrap();
    let table = Arc::new(Table::open(env.open_random("t").unwrap(), 1, options, None).unwrap());
    let mut g = c.benchmark_group("table");
    let mut i = 0u64;
    g.bench_function("get_present", |b| {
        b.iter(|| {
            i = (i + 4099) % 10_000;
            table
                .get(&make_lookup_key(format!("key{i:08}").as_bytes(), u64::MAX >> 9))
                .unwrap()
                .expect("present")
        })
    });
    g.bench_function("get_absent_bloom_filtered", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            table.get(&make_lookup_key(format!("nope{i:08}").as_bytes(), u64::MAX >> 9)).unwrap()
        })
    });
    g.finish();
}

/// A tiered store with the data compacted onto either the local or the
/// cloud tier, ready for read benchmarks.
fn multi_get_db(scheme: Scheme) -> TieredDb {
    let config = TieredConfig {
        options: Options {
            write_buffer_size: 32 << 10,
            target_file_size: 16 << 10,
            max_bytes_for_level_base: 64 << 10,
            l0_compaction_trigger: 2,
            ..Options::small_for_tests()
        },
        cache_admission: false,
        ..TieredConfig::small_for_tests()
    };
    let db = scheme.open(Arc::new(MemEnv::new()), config).expect("open");
    for i in 0..4_000u64 {
        db.put(format!("key{i:06}").as_bytes(), &[0x5au8; 64]).expect("put");
    }
    db.flush().expect("flush");
    db.wait_for_compactions().expect("compactions");
    db
}

fn bench_multi_get(c: &mut Criterion) {
    // Local vs cloud-resident data: same tree shape, different tier. The
    // cloud arm uses the instant latency model so criterion measures the
    // batched read path's constant factors, not simulated sleeps.
    for (tier, scheme) in [("local", Scheme::LocalOnly), ("cloud", Scheme::CloudOnly)] {
        let db = multi_get_db(scheme);
        let mut g = c.benchmark_group(format!("multi_get_{tier}"));
        for &batch in &[1usize, 8, 64, 256] {
            // Stride the batch across the keyspace so it touches many
            // blocks, as a real point-lookup batch would.
            let keys: Vec<Vec<u8>> = (0..batch)
                .map(|i| format!("key{:06}", (i * 4_000 / batch) % 4_000).into_bytes())
                .collect();
            let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            g.throughput(Throughput::Elements(batch as u64));
            g.bench_function(format!("batch{batch}"), |b| {
                b.iter(|| {
                    let values = db.multi_get(black_box(&key_refs)).expect("multi_get");
                    assert_eq!(values.len(), batch);
                    values
                })
            });
        }
        g.finish();
        db.close().expect("close");
    }
}

fn bench_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_batch");
    g.bench_function("encode_100_puts", |b| {
        b.iter(|| {
            let mut batch = WriteBatch::new();
            for i in 0..100u64 {
                batch.put(format!("key{i:08}").as_bytes(), &[0u8; 100]);
            }
            batch
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_memtable,
    bench_block,
    bench_bloom,
    bench_wal,
    bench_table,
    bench_multi_get,
    bench_batch
);
criterion_main!(benches);
