//! Criterion check that observability instrumentation is effectively
//! free: point reads against the same store with the observer enabled
//! vs disabled. The acceptance bar is < 5% regression with it on.
//!
//! The third arm opens the HTTP metrics exporter (ephemeral port, nobody
//! scraping) on top of full observability: the exporter and its sampler
//! live entirely on detached threads, so its marginal cost on the read
//! path must be indistinguishable from `get_obs_on`. With the exporter
//! off, its entire cost is one `Option` branch at open.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rocksmash::{TieredConfig, TieredDb};
use storage::{Env, MemEnv};

const RECORDS: u64 = 10_000;

fn key(i: u64) -> Vec<u8> {
    format!("key{i:08}").into_bytes()
}

fn open_db(observability: bool, exporter: bool) -> TieredDb {
    let env: Arc<dyn Env> = Arc::new(MemEnv::new());
    let config = TieredConfig {
        observability,
        metrics_listen: exporter.then(|| "127.0.0.1:0".to_string()),
        ..TieredConfig::small_for_tests()
    };
    let db = TieredDb::open(env, config).expect("open");
    for i in 0..RECORDS {
        db.put(&key(i), format!("value{i:08}").as_bytes()).expect("put");
    }
    db.flush().expect("flush");
    db.wait_for_compactions().expect("settle");
    db
}

fn bench_get_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    for (name, observability, exporter) in [
        ("get_obs_off", false, false),
        ("get_obs_on", true, false),
        ("get_obs_on_exporter", true, true),
    ] {
        let db = open_db(observability, exporter);
        let mut i = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                i = (i + 7919) % RECORDS;
                db.get(black_box(&key(i))).expect("get")
            })
        });
        db.close().expect("close");
    }
    g.finish();
}

criterion_group!(benches, bench_get_overhead);
criterion_main!(benches);
