//! fillrandom throughput as the number of writer threads grows.
//!
//! The sharded write path exists so concurrent writers stop serializing
//! on one memtable mutex and one WAL stream: with `write_shards = 4`,
//! four writers should land on (mostly) disjoint shard locks and
//! group-commit queues. This bench measures aggregate put throughput at
//! 1, 2, 4, and 8 writer threads over a sharded store — the scaling
//! curve (4 threads vs 1) is the headline number for the refactor.
//!
//! Besides the criterion timings, each arm appends its full
//! [`rocksmash::SchemeReport`] — including the new `group_commits`,
//! `group_commit_batches`, and `writer_shard_conflicts` counters — to
//! `results/BENCH_write_scaling.json` for the figure scripts.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lsm::Options;
use rocksmash::{Scheme, TieredConfig, TieredDb};
use storage::MemEnv;

/// Puts issued per thread per measured iteration.
const PER_THREAD: usize = 250;
/// Keyspace each thread scatters its writes over (disjoint per thread).
const KEYSPACE: usize = 1 << 16;
const VALUE: [u8; 128] = [0x3c; 128];

/// A sharded store with buffers big enough that flushes stay rare: the
/// measurement isolates foreground write-path scaling, not flush churn.
fn sharded_db() -> TieredDb {
    let config = TieredConfig {
        options: Options {
            write_shards: 4,
            write_buffer_size: 8 << 20,
            ..Options::small_for_tests()
        },
        ..TieredConfig::small_for_tests()
    };
    Scheme::LocalOnly.open(Arc::new(MemEnv::new()), config).expect("open")
}

/// Deterministic pseudo-random key for thread `t`, op `i`: fillrandom's
/// scatter without an RNG in the hot loop.
fn key(t: usize, i: usize) -> Vec<u8> {
    let scrambled = (t * KEYSPACE + i).wrapping_mul(0x9e37_79b1) % KEYSPACE;
    format!("t{t}-k{scrambled:08}").into_bytes()
}

fn bench_fillrandom_writer_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fillrandom_writer_scaling");
    for threads in [1usize, 2, 4, 8] {
        let db = sharded_db();
        // Warm the tree so every arm starts from comparable state.
        for i in 0..4_096 {
            db.put(&key(0, i), &VALUE).expect("fill");
        }
        g.throughput(Throughput::Elements((threads * PER_THREAD) as u64));
        let mut round = 0usize;
        g.bench_function(format!("threads{threads}"), |b| {
            b.iter(|| {
                round += 1;
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let db = &db;
                        scope.spawn(move || {
                            let base = round * PER_THREAD;
                            for i in 0..PER_THREAD {
                                db.put(black_box(&key(t, base + i)), &VALUE).expect("put");
                            }
                        });
                    }
                });
            })
        });
        db.flush().expect("flush");
        db.wait_for_compactions().expect("settle");
        let report = db.report().expect("report");
        bench::emit_scheme_report("write_scaling", &format!("threads={threads}"), &report, &[]);
        db.close().expect("close");
    }
    g.finish();
}

criterion_group!(benches, bench_fillrandom_writer_scaling);
criterion_main!(benches);
