//! Criterion check that failpoints cost nothing when unarmed: the hot
//! path is one relaxed atomic load and a predicted branch, so evaluating
//! a site with nothing armed anywhere must be indistinguishable from a
//! bare atomic read — no lock, no registry lookup, no allocation. A third
//! case arms an unrelated site to confirm the slow path only engages for
//! the named site's own registry entry, not for every call in the process.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use storage::failpoint::{self, FailAction};

fn bench_failpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("failpoint_overhead");

    // Reference: the cheapest conceivable guard, a bare atomic load.
    let flag = AtomicUsize::new(0);
    g.bench_function("atomic_load_baseline", |b| {
        b.iter(|| black_box(flag.load(Ordering::Acquire)))
    });

    failpoint::disarm_all();
    g.bench_function("unarmed", |b| {
        b.iter(|| failpoint::fail_point(black_box("bench_site")).is_ok())
    });

    // Another site armed: calls for *this* site now take the registry
    // lock, but must still pass and stay cheap.
    failpoint::arm("some_other_site", FailAction::CrashAfter(u64::MAX));
    g.bench_function("different_site_armed", |b| {
        b.iter(|| failpoint::fail_point(black_box("bench_site")).is_ok())
    });
    failpoint::disarm_all();

    g.finish();
}

criterion_group!(benches, bench_failpoint);
criterion_main!(benches);
