//! **E8** — compaction interference on the persistent cache.
//!
//! Warms the cache, then injects a write burst that triggers compactions
//! (obsoleting cloud-resident SSTables and invalidating their cached
//! blocks), and measures read performance before, during, and after, plus
//! the bookkeeping cost of invalidation. Expected shape: the
//! compaction-aware layout invalidates in O(extents) and recovers its hit
//! ratio quickly; the conventional cache pays O(slots) scans per obsolete
//! file and loses more ground during the burst.

use rocksmash::{CacheKind, Scheme, TieredConfig};
use storage::LocalEnv;
use workloads::microbench::{overwrite, readrandom};
use workloads::{run_ops, KeyDistribution};

use crate::{emit_table, kops, load_random, ExpDir, ExpParams, Row};

/// Run E8 and print its table.
pub fn run(params: &ExpParams) {
    let mut rows = Vec::new();
    for cache in [CacheKind::Mash, CacheKind::Baseline] {
        let dir = ExpDir::new("compaction");
        let env = std::sync::Arc::new(LocalEnv::new(dir.path().clone()).expect("env"));
        // RocksMash placement with the cache under test.
        let config = TieredConfig { cache, ..Scheme::RocksMash.configure(params.base_config()) };
        let db = rocksmash::TieredDb::open(env, config).expect("open");
        load_random(&db, params);
        let dist = KeyDistribution::zipfian_default();

        // Phase 1: warm reads.
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 31)).expect("warm");
        let before =
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 32)).expect("pre");
        let hits_before = db.report().expect("report").cache.expect("cache").hit_ratio();

        // Phase 2: write burst → compactions → cache invalidations.
        run_ops(
            &db,
            overwrite(params.record_count, params.record_count / 2, params.value_size, dist, 33),
        )
        .expect("burst");
        db.flush().expect("flush");
        db.wait_for_compactions().expect("settle");
        let during =
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 34)).expect("mid");

        // Phase 3: let the cache re-warm.
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 35)).expect("rewarm");
        let after =
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 36)).expect("post");

        let report = db.report().expect("report");
        let cache_stats = report.cache.expect("cache");
        let label = match cache {
            CacheKind::Mash => "mash(extent)",
            CacheKind::Baseline => "conventional",
            CacheKind::None => unreachable!(),
        };
        crate::emit_scheme_report("E8-compaction", label, &report, &[]);
        rows.push(Row::new(
            label,
            vec![
                kops(before.throughput()),
                kops(during.throughput()),
                kops(after.throughput()),
                format!("{:.3}", hits_before),
                format!("{:.3}", cache_stats.hit_ratio()),
                format!("{}", cache_stats.invalidations),
                format!("{}", cache_stats.invalidation_steps),
                format!(
                    "{:.1}",
                    cache_stats.invalidation_steps as f64 / cache_stats.invalidations.max(1) as f64
                ),
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E8-compaction",
        "read throughput through a compaction storm + invalidation cost",
        &[
            "pre kops/s",
            "post-burst kops/s",
            "rewarmed kops/s",
            "hit pre",
            "hit cum",
            "invalidations",
            "inval steps",
            "steps/inval",
        ],
        &rows,
    );
}
