//! **E4** — cache hit ratio and throughput vs workload skew.
//!
//! Expected shape: the LSM-aware cache thrives on skew (hit ratio → 1 as
//! theta grows); under uniform access the cache barely helps and RocksMash
//! converges towards the uncached hybrid.

use rocksmash::Scheme;
use workloads::microbench::readrandom;
use workloads::{run_ops, KeyDistribution};

use crate::{emit_table, kops, load_random, open_scheme, ExpParams, Row};

/// Run E4 and print its figure series.
pub fn run(params: &ExpParams) {
    let thetas: &[f64] = if params.quick { &[0.6, 0.99] } else { &[0.5, 0.7, 0.9, 0.99] };
    let mut rows = Vec::new();
    let mut points: Vec<(String, KeyDistribution)> = thetas
        .iter()
        .map(|&theta| (format!("zipf({theta})"), KeyDistribution::Zipfian { theta }))
        .collect();
    points.push(("uniform".to_string(), KeyDistribution::Uniform));

    for (label, dist) in points {
        let (_dir, db) = open_scheme(Scheme::RocksMash, params);
        load_random(&db, params);
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 9)).expect("warm");
        let result =
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 10)).expect("run");
        let report = db.report().expect("report");
        let cache = report.cache.as_ref().expect("cache");
        let read_p99_us = result.overall_latency().percentile_ns(0.99) as f64 / 1000.0;
        // Hottest SST by decayed score, with its residency tier: under
        // skew the head of the ranking should absorb most of the traffic.
        let (hot_sst, hot_tier, hot_score) = report
            .heat
            .as_ref()
            .and_then(|h| h.entries.first())
            .map(|e| (e.file.to_string(), e.tier.clone().unwrap_or_else(|| "?".into()), e.score))
            .unwrap_or_else(|| ("-".into(), "-".into(), 0.0));
        crate::emit_scheme_report_with("E4-skew", &label, &report, &[("read_p99_us", read_p99_us)]);
        rows.push(Row::new(
            label,
            vec![
                kops(result.throughput()),
                format!("{:.3}", cache.hit_ratio()),
                format!("{}", report.cloud.reads),
                format!("{read_p99_us:.0}"),
                format!("{hot_sst}@{hot_tier}"),
                format!("{hot_score:.1}"),
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E4-skew",
        "RocksMash reads vs key-popularity skew",
        &["read kops/s", "cache hit ratio", "cloud GETs", "read p99 µs", "hot sst", "hot score"],
        &rows,
    );
}
