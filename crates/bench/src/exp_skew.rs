//! **E4** — cache hit ratio and throughput vs workload skew, plus a
//! moving-hotspot phase for heat-driven promotion.
//!
//! Expected shape: the LSM-aware cache thrives on skew (hit ratio → 1 as
//! theta grows); under uniform access the cache barely helps and RocksMash
//! converges towards the uncached hybrid. In the hotspot-shift phase the
//! static split never recovers the read p99 after the hot key range moves,
//! while heat-driven promotion pulls the new hot tables local and returns
//! the p99 to its pre-shift level.

use std::time::Duration;

use rocksmash::{CacheKind, PromotionConfig, Scheme, TieredConfig, TieredDb};
use workloads::microbench::readrandom;
use workloads::{run_ops, KeyDistribution};

use crate::{emit_table, kops, load_random, open_config, open_scheme, ExpParams, Row};

/// Run E4 and print its figure series.
pub fn run(params: &ExpParams) {
    let thetas: &[f64] = if params.quick { &[0.6, 0.99] } else { &[0.5, 0.7, 0.9, 0.99] };
    let mut rows = Vec::new();
    let mut points: Vec<(String, KeyDistribution)> = thetas
        .iter()
        .map(|&theta| (format!("zipf({theta})"), KeyDistribution::Zipfian { theta }))
        .collect();
    points.push(("uniform".to_string(), KeyDistribution::Uniform));

    for (label, dist) in points {
        let (_dir, db) = open_scheme(Scheme::RocksMash, params);
        load_random(&db, params);
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 9)).expect("warm");
        let result =
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 10)).expect("run");
        let report = db.report().expect("report");
        let cache = report.cache.as_ref().expect("cache");
        let read_p99_us = result.overall_latency().percentile_ns(0.99) as f64 / 1000.0;
        // Hottest SST by decayed score, with its residency tier: under
        // skew the head of the ranking should absorb most of the traffic.
        let (hot_sst, hot_tier, hot_score) = report
            .heat
            .as_ref()
            .and_then(|h| h.entries.first())
            .map(|e| (e.file.to_string(), e.tier.clone().unwrap_or_else(|| "?".into()), e.score))
            .unwrap_or_else(|| ("-".into(), "-".into(), 0.0));
        crate::emit_scheme_report("E4-skew", &label, &report, &[("read_p99_us", read_p99_us)]);
        rows.push(Row::new(
            label,
            vec![
                kops(result.throughput()),
                format!("{:.3}", cache.hit_ratio()),
                format!("{}", report.cloud.reads),
                format!("{read_p99_us:.0}"),
                format!("{hot_sst}@{hot_tier}"),
                format!("{hot_score:.1}"),
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E4-skew",
        "RocksMash reads vs key-popularity skew",
        &["read kops/s", "cache hit ratio", "cloud GETs", "read p99 µs", "hot sst", "hot score"],
        &rows,
    );

    run_hotspot_shift(params);
}

/// Fraction of the keyspace each hotspot covers. A quarter keeps the two
/// phases' hot ranges disjoint while leaving most of the tree cold.
const SHIFT_SPAN: f64 = 0.25;

/// The shift phase's configuration: RocksMash with the persistent cache
/// disabled — recovery after the shift must be attributable to tier
/// placement, not to mashcache refill — and promotion driven explicitly
/// (the background interval never fires within a run).
fn shift_config(params: &ExpParams) -> TieredConfig {
    let mut config = TieredConfig {
        cache: CacheKind::None,
        promotion: Some(PromotionConfig {
            local_budget_bytes: params.data_bytes() / 2,
            interval: Duration::from_secs(3600),
            min_score: 1.0,
            max_files_per_pass: 4,
            max_bytes_per_pass: 0,
        }),
        ..Scheme::RocksMash.configure(params.base_config())
    };
    // A block cache sized to the hotspot would absorb the post-shift reads
    // and hide the tier difference the phase exists to measure; keep it far
    // smaller than one hot window so p99 tracks residency, not the cache.
    config.options.block_cache_bytes = 64 << 10;
    config
}

/// Drive promotion passes until a pass moves nothing; returns total
/// (promoted, demoted) table counts.
fn settle_promotion(db: &TieredDb) -> (u64, u64) {
    let (mut promoted, mut demoted) = (0u64, 0u64);
    for _ in 0..64 {
        let report = db.run_promotion_pass().expect("promotion pass");
        promoted += report.promoted as u64;
        demoted += report.demoted as u64;
        if report.promoted == 0 && report.demoted == 0 {
            break;
        }
    }
    (promoted, demoted)
}

/// Moving-hotspot phase: a clustered Zipf hotspot heats one contiguous
/// quarter of the keyspace; both rows settle into the same placed state
/// (hot quarter local). Then the hotspot jumps to a disjoint quarter: the
/// `static` row freezes placement and keeps paying cloud latency, the
/// `promotion` row lets the heat-driven pass pull the new hot tables back.
fn run_hotspot_shift(params: &ExpParams) {
    let theta = 0.9;
    let before = KeyDistribution::ZipfCluster { theta, start: 0.0, span: SHIFT_SPAN };
    let after = KeyDistribution::ZipfCluster { theta, start: 0.5, span: SHIFT_SPAN };
    let mut rows = Vec::new();
    for (label, promote_after_shift) in [("static", false), ("promotion", true)] {
        let (_dir, db) = open_config("rocksmash-shift", shift_config(params));
        load_random(&db, params);
        // Warm the first hotspot and settle promotion so both rows start
        // identically: hot quarter local, everything else cloud.
        run_ops(&db, readrandom(params.record_count, params.op_count, before, 9)).expect("warm");
        settle_promotion(&db);
        let pre = run_ops(&db, readrandom(params.record_count, params.op_count, before, 10))
            .expect("pre-shift");
        let pre_p99_us = pre.overall_latency().percentile_ns(0.99) as f64 / 1000.0;
        if !promote_after_shift {
            // Freeze placement at the static split: later passes plan
            // nothing, so the post-shift hotspot stays where it is.
            db.router().set_placement(db.config().placement);
        }
        // The hotspot jumps. Age out the old heat, re-warm the new range
        // (slow for both rows — it is cloud-resident), then let the pass
        // react; under the frozen static policy it is a no-op.
        db.observer().heat().advance_ticks(8);
        run_ops(&db, readrandom(params.record_count, params.op_count, after, 11)).expect("rewarm");
        let (promoted, demoted) = settle_promotion(&db);
        let post = run_ops(&db, readrandom(params.record_count, params.op_count, after, 12))
            .expect("post-shift");
        let post_p99_us = post.overall_latency().percentile_ns(0.99) as f64 / 1000.0;
        let report = db.report().expect("report");
        crate::emit_scheme_report(
            "E4-skew",
            &format!("shift-{label}"),
            &report,
            &[("pre_shift_p99_us", pre_p99_us), ("post_shift_p99_us", post_p99_us)],
        );
        rows.push(Row::new(
            label,
            vec![
                format!("{pre_p99_us:.0}"),
                format!("{post_p99_us:.0}"),
                format!("{:.2}", post_p99_us / pre_p99_us.max(1e-9)),
                format!("{promoted}"),
                format!("{demoted}"),
                kops(post.throughput()),
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E4-shift",
        "moving hotspot: read p99 before/after the shift",
        &["pre p99 µs", "post p99 µs", "post/pre", "promoted", "demoted", "post kops/s"],
        &rows,
    );
}
