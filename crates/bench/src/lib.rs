//! Shared experiment harness.
//!
//! Every table and figure of the reconstructed evaluation (DESIGN.md,
//! EXPERIMENTS.md) has a module here with a `run(&ExpParams)` entry point
//! and a thin binary wrapper in `src/bin/`. Experiments print their
//! rows/series as aligned text tables and append machine-readable JSON
//! lines under `results/`.
//!
//! Scales are laptop-sized but preserve the ratios that drive the paper's
//! conclusions: the cloud tier pays a per-request first-byte latency two
//! orders of magnitude above local, capacity prices differ ~4×, and the
//! LSM spills most bytes to the cold tier. Set `RM_QUICK=1` for a fast
//! smoke pass.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lsm::Options;
use rocksmash::{Scheme, TieredConfig, TieredDb};
use storage::{CloudConfig, LatencyModel, LocalEnv};
use workloads::microbench::fillrandom;
use workloads::run_ops;

pub mod exp_ablation;
pub mod exp_cache_size;
pub mod exp_clients;
pub mod exp_compaction;
pub mod exp_compression;
pub mod exp_cost;
pub mod exp_metadata;
pub mod exp_micro;
pub mod exp_recovery;
pub mod exp_scan;
pub mod exp_skew;
pub mod exp_ycsb;

/// Global experiment parameters.
#[derive(Debug, Clone)]
pub struct ExpParams {
    /// Records loaded before measured phases.
    pub record_count: u64,
    /// Value payload bytes.
    pub value_size: usize,
    /// Measured operations per phase.
    pub op_count: u64,
    /// Persistent cache capacity for cached schemes.
    pub cache_bytes: u64,
    /// Simulated cloud first-byte latency (µs).
    pub cloud_base_us: u64,
    /// Quick mode (CI smoke).
    pub quick: bool,
}

impl ExpParams {
    /// Standard scale, honoring `RM_QUICK=1`.
    pub fn from_env() -> Self {
        let quick = std::env::var("RM_QUICK").map(|v| v == "1").unwrap_or(false);
        if quick {
            ExpParams {
                record_count: 4_000,
                value_size: 128,
                op_count: 800,
                cache_bytes: 1 << 20,
                cloud_base_us: 150,
                quick: true,
            }
        } else {
            ExpParams {
                record_count: 20_000,
                value_size: 256,
                op_count: 4_000,
                cache_bytes: 2 << 20,
                cloud_base_us: 400,
                quick: false,
            }
        }
    }

    /// Approximate user-data volume of the loaded key space.
    pub fn data_bytes(&self) -> u64 {
        self.record_count * (self.value_size as u64 + 16)
    }

    /// Engine options shared by every scheme, scaled to the dataset so the
    /// tree develops 3+ levels (most bytes below the local/cloud split)
    /// and the in-memory block cache holds only a small fraction — the
    /// same proportions as the paper's multi-GB runs.
    pub fn engine_options(&self) -> Options {
        let data = self.data_bytes();
        Options {
            write_buffer_size: (data / 24).clamp(64 << 10, 4 << 20) as usize,
            target_file_size: (data / 20).clamp(32 << 10, 2 << 20),
            max_bytes_for_level_base: (data / 5).clamp(128 << 10, 16 << 20),
            level_size_multiplier: 8,
            l0_compaction_trigger: 4,
            block_size: 4096,
            block_cache_bytes: (data / 10).clamp(64 << 10, 8 << 20) as usize,
            bloom_bits_per_key: 10,
            ..Options::default()
        }
    }

    /// The shared scheme-independent configuration.
    pub fn base_config(&self) -> TieredConfig {
        TieredConfig {
            options: self.engine_options(),
            cache_bytes: self.cache_bytes,
            cloud: CloudConfig {
                latency: LatencyModel {
                    base_us: self.cloud_base_us,
                    bandwidth_mib_s: 400.0,
                    jitter_frac: 0.05,
                },
                ..CloudConfig::default()
            },
            ..TieredConfig::rocksmash()
        }
    }
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A scratch database directory, removed on drop.
pub struct ExpDir {
    path: PathBuf,
}

impl ExpDir {
    /// Fresh empty directory under the system temp dir.
    pub fn new(tag: &str) -> ExpDir {
        let path = std::env::temp_dir().join(format!(
            "rocksmash-exp-{tag}-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create experiment dir");
        ExpDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Drop for ExpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Open a scheme on a fresh local directory with the shared base config.
pub fn open_scheme(scheme: Scheme, params: &ExpParams) -> (ExpDir, TieredDb) {
    open_scheme_with(scheme, params, |_| {})
}

/// Open a scheme with an experiment-specific tweak applied to the shared
/// base config (e.g. a readahead sweep point).
pub fn open_scheme_with(
    scheme: Scheme,
    params: &ExpParams,
    tweak: impl FnOnce(&mut TieredConfig),
) -> (ExpDir, TieredDb) {
    let dir = ExpDir::new(scheme.name());
    let env = Arc::new(LocalEnv::new(dir.path().clone()).expect("local env"));
    let mut config = params.base_config();
    tweak(&mut config);
    let db = scheme.open(env, config).expect("open scheme");
    (dir, db)
}

/// Open a store from a fully-specified config on a fresh directory,
/// bypassing [`Scheme::configure`] — for experiments that override knobs
/// the scheme preset would otherwise pin (e.g. disabling the persistent
/// cache so tier placement alone explains the read latency).
pub fn open_config(tag: &str, config: TieredConfig) -> (ExpDir, TieredDb) {
    let dir = ExpDir::new(tag);
    let env = Arc::new(LocalEnv::new(dir.path().clone()).expect("local env"));
    let db = TieredDb::open(env, config).expect("open config");
    (dir, db)
}

/// Load `record_count` records in random order, flush, and let compaction
/// settle so every scheme starts from the same shape.
pub fn load_random(db: &TieredDb, params: &ExpParams) {
    run_ops(db, fillrandom(params.record_count, params.value_size, 0x10ad)).expect("load");
    db.flush().expect("flush");
    db.wait_for_compactions().expect("compactions");
}

/// One output row: label plus column values.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Row {
    /// Row label (scheme, parameter point...).
    pub label: String,
    /// Column values in header order.
    pub values: Vec<String>,
}

impl Row {
    /// Build a row from anything displayable.
    pub fn new(label: impl Into<String>, values: Vec<String>) -> Row {
        Row { label: label.into(), values }
    }
}

/// Print an aligned table and persist it as JSON lines under `results/`.
pub fn emit_table(experiment: &str, title: &str, headers: &[&str], rows: &[Row]) {
    println!("\n== {experiment}: {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let label_width =
        rows.iter().map(|r| r.label.len()).chain(std::iter::once(8)).max().unwrap_or(8);
    for row in rows {
        for (i, v) in row.values.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(v.len());
            }
        }
    }
    print!("{:label_width$}", "");
    for (h, w) in headers.iter().zip(&widths) {
        print!("  {h:>w$}");
    }
    println!();
    for row in rows {
        print!("{:label_width$}", row.label);
        for (v, w) in row.values.iter().zip(&widths) {
            print!("  {v:>w$}");
        }
        println!();
    }

    let out_dir = std::env::var("RM_OUT").unwrap_or_else(|_| "results".to_string());
    if std::fs::create_dir_all(&out_dir).is_ok() {
        let path = PathBuf::from(out_dir).join(format!("{experiment}.jsonl"));
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            use std::io::Write;
            for row in rows {
                let record = serde_json::json!({
                    "experiment": experiment,
                    "title": title,
                    "headers": headers,
                    "label": row.label,
                    "values": row.values,
                });
                let _ = writeln!(file, "{record}");
            }
        }
    }
}

/// Persist a full [`rocksmash::SchemeReport`] for one experiment point as
/// a JSON line under `results/BENCH_<experiment>.json`, so figure scripts
/// get every counter — not just the columns the printed table selects.
///
/// `extras` adds top-level numeric fields (measured latencies and other
/// values the report itself doesn't carry). The amplification summary —
/// `w_amp`, `r_amp`, `space_amp`, `compaction_debt_bytes`, `flush_bytes`
/// — is appended automatically from the report's level table, so every
/// experiment's result line carries the self-diagnosis numbers without
/// each caller threading them through.
pub fn emit_scheme_report(
    experiment: &str,
    label: &str,
    report: &rocksmash::SchemeReport,
    extras: &[(&str, f64)],
) {
    let out_dir = std::env::var("RM_OUT").unwrap_or_else(|_| "results".to_string());
    if std::fs::create_dir_all(&out_dir).is_err() {
        return;
    }
    let path = PathBuf::from(out_dir).join(format!("BENCH_{experiment}.json"));
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        use std::io::Write;
        let mut extra = String::new();
        let mut push = |key: &str, value: f64| {
            extra.push_str(&format!(
                ",\"{}\":{}",
                obs::json::escape(key),
                obs::json::fmt_f64(value)
            ));
        };
        for (key, value) in extras {
            push(key, *value);
        }
        if let Some(levels) = &report.levels {
            push("w_amp", levels.write_amp());
            push("r_amp", levels.read_amp() as f64);
            push("space_amp", levels.space_amp());
            push("compaction_debt_bytes", levels.compaction_debt_bytes as f64);
            push("flush_bytes", report.flush_bytes as f64);
        }
        let _ = writeln!(
            file,
            "{{\"experiment\":\"{}\",\"label\":\"{}\"{extra},\"report\":{}}}",
            obs::json::escape(experiment),
            obs::json::escape(label),
            report.to_json()
        );
    }
}

/// Sampling period experiments use for per-op perf contexts: frequent
/// enough that a measured phase collects dozens of breakdowns, cheap
/// enough not to move the throughput columns.
pub const PERF_SAMPLE_EVERY: u64 = 32;

/// Cloud-GET and cache (hit + fill) share of sampled-op stage time as two
/// formatted percentage columns, `"-"` when nothing was sampled. Pass a
/// [`obs::PerfContext::delta_since`] of the observer's totals to scope
/// the shares to one measured phase.
pub fn perf_share_columns(perf: &obs::PerfContext) -> (String, String) {
    let sum = perf.stage_sum_ns();
    if sum == 0 {
        return ("-".to_string(), "-".to_string());
    }
    let pct = |ns: u64| format!("{:.1}", ns as f64 / sum as f64 * 100.0);
    (pct(perf.cloud_get_ns), pct(perf.mashcache_hit_ns + perf.mashcache_fill_ns))
}

/// Format ops/sec as kops with two decimals.
pub fn kops(ops: f64) -> String {
    format!("{:.2}", ops / 1000.0)
}

/// Format nanoseconds as microseconds with one decimal.
pub fn us(ns: f64) -> String {
    format!("{:.1}", ns / 1000.0)
}
