//! **E9** — design ablation (table): add the RocksMash pillars one at a
//! time on top of bare tiered placement and measure YCSB-B.
//!
//! Expected shape: each pillar contributes — the persistent cache is the
//! largest read win, the LSM-aware layout + packed metadata beat the
//! conventional cache, admission filtering helps under scan pollution, and
//! the eWAL leaves steady-state throughput intact (its win is recovery
//! time, E6).

use rocksmash::{CacheKind, Scheme, TieredConfig};
use storage::LocalEnv;
use workloads::{run_ops, WorkloadSpec};

use crate::{emit_table, kops, ExpDir, ExpParams, Row};

/// Run E9 and print its table.
pub fn run(params: &ExpParams) {
    type Variant = (&'static str, Box<dyn Fn(TieredConfig) -> TieredConfig>);
    let variants: Vec<Variant> = vec![
        (
            "placement only",
            Box::new(|base| TieredConfig {
                cache: CacheKind::None,
                ewal: false,
                ..Scheme::RocksMash.configure(base)
            }),
        ),
        (
            "+conventional cache",
            Box::new(|base| TieredConfig {
                cache: CacheKind::Baseline,
                ewal: false,
                ..Scheme::RocksMash.configure(base)
            }),
        ),
        (
            "+lsm-aware cache",
            Box::new(|base| TieredConfig {
                cache: CacheKind::Mash,
                cache_admission: false,
                ewal: false,
                ..Scheme::RocksMash.configure(base)
            }),
        ),
        (
            "+admission",
            Box::new(|base| TieredConfig {
                cache: CacheKind::Mash,
                cache_admission: true,
                ewal: false,
                ..Scheme::RocksMash.configure(base)
            }),
        ),
        ("+ewal (full)", Box::new(|base| Scheme::RocksMash.configure(base))),
    ];

    let spec = WorkloadSpec::b(params.record_count, params.value_size);
    let mut rows = Vec::new();
    for (label, make) in variants {
        let dir = ExpDir::new("ablation");
        let env = std::sync::Arc::new(LocalEnv::new(dir.path().clone()).expect("env"));
        let db = rocksmash::TieredDb::open(env, make(params.base_config())).expect("open");
        run_ops(&db, spec.load_ops()).expect("load");
        db.flush().expect("flush");
        db.wait_for_compactions().expect("settle");
        run_ops(&db, spec.run_ops(params.op_count / 2, 41)).expect("warm");
        let result = run_ops(&db, spec.run_ops(params.op_count, 42)).expect("run");
        let report = db.report().expect("report");
        let hit = report.cache.map(|c| c.hit_ratio()).unwrap_or(0.0);
        crate::emit_scheme_report("E9-ablation", label, &report, &[]);
        rows.push(Row::new(
            label,
            vec![
                kops(result.throughput()),
                format!("{:.3}", hit),
                format!("{}", report.cloud.reads),
                format!("{}", report.cache_metadata_bytes / 1024),
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E9-ablation",
        "YCSB-B with RocksMash pillars enabled incrementally",
        &["kops/s", "cache hit", "cloud GETs", "cache meta KiB"],
        &rows,
    );
}
