//! **E1** — microbenchmark throughput across schemes (the paper's
//! db_bench-style figure: fillrandom / readrandom / readseq / seekrandom).
//!
//! Expected shape: writes land within a small band of each other (the
//! write path is local in every scheme); random reads order LocalOnly >
//! RocksMash > NaiveHybrid > CloudOnly, with RocksMash recovering most of
//! the local-read performance through its cache — the up-to-1.7×-over-
//! state-of-the-art headline.

use rocksmash::Scheme;
use workloads::microbench::{readrandom, readseq, seekrandom};
use workloads::{run_ops, KeyDistribution};

use crate::{
    emit_table, kops, open_scheme_with, perf_share_columns, us, ExpParams, Row, PERF_SAMPLE_EVERY,
};

/// Run E1 and print its figure series.
pub fn run(params: &ExpParams) {
    let mut rows = Vec::new();
    for scheme in Scheme::all() {
        let (_dir, db) =
            open_scheme_with(scheme, params, |c| c.perf_sample_every = PERF_SAMPLE_EVERY);

        let load = run_ops(
            &db,
            workloads::microbench::fillrandom(params.record_count, params.value_size, 0x10ad),
        )
        .expect("fillrandom");
        db.flush().expect("flush");
        db.wait_for_compactions().expect("settle");

        let reads = run_ops(
            &db,
            readrandom(params.record_count, params.op_count, KeyDistribution::zipfian_default(), 7),
        )
        .expect("readrandom");
        // Second pass over the same key stream: the paper's warm-cache read
        // numbers (caches populated by the first pass). Sampled perf
        // contexts scope the cloud/cache stage shares to this phase.
        let perf_before = db.observer().perf_totals();
        let warm = run_ops(
            &db,
            readrandom(params.record_count, params.op_count, KeyDistribution::zipfian_default(), 7),
        )
        .expect("readrandom warm");
        let perf_warm = db.observer().perf_totals().delta_since(&perf_before);
        let (cloud_share, cache_share) = perf_share_columns(&perf_warm);

        let seq = run_ops(&db, readseq(params.record_count, 100)).expect("readseq");
        let seeks = run_ops(
            &db,
            seekrandom(
                params.record_count,
                params.op_count / 4,
                10,
                KeyDistribution::zipfian_default(),
                11,
            ),
        )
        .expect("seekrandom");

        assert_eq!(reads.not_found, 0, "{}: reads missed loaded keys", scheme.name());
        rows.push(Row::new(
            scheme.name(),
            vec![
                kops(load.throughput()),
                kops(reads.throughput()),
                kops(warm.throughput()),
                format!("{:.2}", seq.scanned_records as f64 / seq.elapsed_secs / 1000.0),
                kops(seeks.throughput()),
                us(warm.overall_latency().mean_ns()),
                us(warm.overall_latency().percentile_ns(99.0) as f64),
                cloud_share,
                cache_share,
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E1-micro",
        "microbenchmark throughput by scheme",
        &[
            "fill kops/s",
            "read kops/s",
            "warm-read kops/s",
            "scan krec/s",
            "seek kops/s",
            "warm mean us",
            "warm p99 us",
            "cloud %",
            "cache %",
        ],
        &rows,
    );
}
