//! **E11** — throughput vs concurrent clients.
//!
//! The cloud tier is latency-bound, so its schemes scale with client
//! concurrency until bandwidth or CPU saturates; the local-only scheme is
//! CPU-bound and flat (or regresses on few cores). Expected shape:
//! RocksMash needs far fewer clients than the uncached schemes to reach a
//! given throughput (its hits don't pay the latency), but all cloud-backed
//! schemes climb with concurrency — the paper's multi-client YCSB setup.

use rocksmash::Scheme;
use workloads::microbench::readrandom;
use workloads::{run_ops, run_ops_concurrent, KeyDistribution};

use crate::{emit_table, kops, load_random, open_scheme, ExpParams, Row};

/// Run E11 and print its figure series.
pub fn run(params: &ExpParams) {
    let thread_counts: &[usize] = if params.quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let mut rows = Vec::new();
    for scheme in [Scheme::LocalOnly, Scheme::CloudOnly, Scheme::NaiveHybrid, Scheme::RocksMash] {
        let (_dir, db) = open_scheme(scheme, params);
        load_random(&db, params);
        let dist = KeyDistribution::zipfian_default();
        // Warm caches once.
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 61)).expect("warm");
        let mut values = Vec::new();
        for &threads in thread_counts {
            let result = run_ops_concurrent(
                &db,
                readrandom(params.record_count, params.op_count, dist, 62),
                threads,
            )
            .expect("run");
            assert_eq!(result.not_found, 0);
            values.push(kops(result.throughput()));
        }
        rows.push(Row::new(scheme.name(), values));
        db.close().expect("close");
    }
    let headers: Vec<String> = thread_counts.iter().map(|t| format!("{t} clients")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit_table(
        "E11-clients",
        "zipfian read throughput vs concurrent clients (kops/s)",
        &header_refs,
        &rows,
    );
}
