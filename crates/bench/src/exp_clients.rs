//! **E11** — throughput vs concurrent clients.
//!
//! The cloud tier is latency-bound, so its schemes scale with client
//! concurrency until bandwidth or CPU saturates; the local-only scheme is
//! CPU-bound and flat (or regresses on few cores). Expected shape:
//! RocksMash needs far fewer clients than the uncached schemes to reach a
//! given throughput (its hits don't pay the latency), but all cloud-backed
//! schemes climb with concurrency — the paper's multi-client YCSB setup.

use rocksmash::Scheme;
use workloads::microbench::{readrandom, seekrandom};
use workloads::{run_ops, run_ops_concurrent, KeyDistribution};

use crate::exp_scan::READAHEAD_BLOCKS;
use crate::{emit_table, kops, load_random, open_scheme, open_scheme_with, ExpParams, Row};

/// Run E11 and print its figure series.
pub fn run(params: &ExpParams) {
    let thread_counts: &[usize] = if params.quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let mut rows = Vec::new();
    for scheme in [Scheme::LocalOnly, Scheme::CloudOnly, Scheme::NaiveHybrid, Scheme::RocksMash] {
        let (_dir, db) = open_scheme(scheme, params);
        load_random(&db, params);
        let dist = KeyDistribution::zipfian_default();
        // Warm caches once.
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 61)).expect("warm");
        let mut values = Vec::new();
        for &threads in thread_counts {
            let result = run_ops_concurrent(
                &db,
                readrandom(params.record_count, params.op_count, dist, 62),
                threads,
            )
            .expect("run");
            assert_eq!(result.not_found, 0);
            values.push(kops(result.throughput()));
        }
        rows.push(Row::new(scheme.name(), values));
        db.close().expect("close");
    }
    let headers: Vec<String> = thread_counts.iter().map(|t| format!("{t} clients")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit_table(
        "E11-clients",
        "zipfian read throughput vs concurrent clients (kops/s)",
        &header_refs,
        &rows,
    );

    // Readahead sweep: the same client scaling but for range scans, with
    // cloud-block readahead off vs on. Readahead overlaps the next blocks'
    // cloud RTTs with iteration, so the "on" arm reaches a given scan
    // throughput with fewer clients — concurrency and prefetching are two
    // routes to the same latency-hiding.
    let scan_len = 100usize;
    let mut scan_rows = Vec::new();
    for scheme in [Scheme::CloudOnly, Scheme::NaiveHybrid, Scheme::RocksMash] {
        for ra in [0, READAHEAD_BLOCKS] {
            let (_dir, db) = open_scheme_with(scheme, params, |cfg| cfg.readahead_blocks = ra);
            load_random(&db, params);
            let scans = (params.op_count / 8).max(50);
            run_ops(
                &db,
                seekrandom(params.record_count, scans / 2, scan_len, KeyDistribution::Uniform, 63),
            )
            .expect("warm");
            let mut values = Vec::new();
            for &threads in thread_counts {
                let result = run_ops_concurrent(
                    &db,
                    seekrandom(params.record_count, scans, scan_len, KeyDistribution::Uniform, 64),
                    threads,
                )
                .expect("run");
                let records_per_sec = result.scanned_records as f64 / result.elapsed_secs;
                values.push(format!("{:.1}", records_per_sec / 1000.0));
            }
            let label = if ra == 0 {
                scheme.name().to_string()
            } else {
                format!("{} ra={ra}", scheme.name())
            };
            scan_rows.push(Row::new(label, values));
            db.close().expect("close");
        }
    }
    emit_table(
        "E11-clients-scan",
        "concurrent scan throughput vs clients, readahead off/on (krec/s)",
        &header_refs,
        &scan_rows,
    );
}
