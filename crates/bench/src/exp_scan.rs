//! **E10** — scan throughput vs scan length across schemes.
//!
//! Expected shape: short scans behave like point reads (cloud latency
//! dominates uncached schemes); long scans amortize the per-request
//! latency over more records, narrowing the gap — the crossover where
//! cloud bandwidth, not latency, becomes the limit.

use rocksmash::Scheme;
use workloads::microbench::seekrandom;
use workloads::{run_ops, KeyDistribution};

use crate::{emit_table, load_random, open_scheme, ExpParams, Row};

/// Run E10 and print its figure series.
pub fn run(params: &ExpParams) {
    let lengths: &[usize] = if params.quick { &[1, 100] } else { &[1, 10, 100, 1000] };
    let mut rows = Vec::new();
    for scheme in Scheme::all() {
        let (_dir, db) = open_scheme(scheme, params);
        load_random(&db, params);
        let mut values = Vec::new();
        for &len in lengths {
            let ops = (params.op_count / 8).max(50).min(2_000_000 / len as u64);
            run_ops(
                &db,
                seekrandom(params.record_count, ops / 2, len, KeyDistribution::Uniform, 51),
            )
            .expect("warm");
            let result = run_ops(
                &db,
                seekrandom(params.record_count, ops, len, KeyDistribution::Uniform, 52),
            )
            .expect("run");
            let records_per_sec = result.scanned_records as f64 / result.elapsed_secs;
            values.push(format!("{:.1}", records_per_sec / 1000.0));
        }
        rows.push(Row::new(scheme.name(), values));
        db.close().expect("close");
    }
    let headers: Vec<String> = lengths.iter().map(|l| format!("len={l} krec/s")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit_table("E10-scan", "scan throughput vs scan length", &header_refs, &rows);
}
