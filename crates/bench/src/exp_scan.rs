//! **E10** — scan throughput vs scan length across schemes, with a
//! readahead on/off sweep on the cloud-backed schemes.
//!
//! Expected shape: short scans behave like point reads (cloud latency
//! dominates uncached schemes); long scans amortize the per-request
//! latency over more records, narrowing the gap — the crossover where
//! cloud bandwidth, not latency, becomes the limit. With
//! `readahead_blocks > 0` the iterator schedules the next N cloud blocks
//! as one coalesced ranged GET on the prefetch pool, so sequential scans
//! pay ~1/N of the per-request latency and request count; the companion
//! counter table shows the mechanism (blocks prefetched, prefetch hits,
//! prefetched-but-never-read blocks, coalesced GETs, billed requests
//! saved). Scans push their end key down as an iterator upper bound, so
//! the "wasted" column should stay ~0: readahead is clamped at the last
//! block each scan can touch.

use rocksmash::{Scheme, SchemeReport};
use workloads::microbench::seekrandom_bounded;
use workloads::{run_ops, KeyDistribution};

use crate::{emit_table, load_random, open_scheme_with, ExpParams, Row};

/// Readahead depth used for the "on" arm of the sweep.
pub const READAHEAD_BLOCKS: usize = 8;

/// Run E10 and print its figure series.
pub fn run(params: &ExpParams) {
    let lengths: &[usize] = if params.quick { &[1, 100] } else { &[1, 10, 100, 1000] };
    let mut rows = Vec::new();
    let mut counter_rows = Vec::new();
    for scheme in Scheme::all() {
        // Readahead only changes behaviour when blocks live on the cloud
        // tier; sweep it there and keep local-only as the single ceiling
        // row.
        let sweeps: &[usize] =
            if scheme == Scheme::LocalOnly { &[0] } else { &[0, READAHEAD_BLOCKS] };
        for &ra in sweeps {
            let (_dir, db) = open_scheme_with(scheme, params, |cfg| cfg.readahead_blocks = ra);
            load_random(&db, params);
            let label = if ra == 0 {
                scheme.name().to_string()
            } else {
                format!("{} ra={ra}", scheme.name())
            };
            let before = SchemeReport::collect(&db).expect("report");
            let mut values = Vec::new();
            for &len in lengths {
                let ops = (params.op_count / 8).max(50).min(2_000_000 / len as u64);
                // Bounded scans: the end key is pushed down as an iterator
                // upper bound, so readahead stops at the last block of each
                // scan instead of overshooting into never-read cloud blocks.
                run_ops(
                    &db,
                    seekrandom_bounded(
                        params.record_count,
                        ops / 2,
                        len,
                        KeyDistribution::Uniform,
                        51,
                    ),
                )
                .expect("warm");
                let result = run_ops(
                    &db,
                    seekrandom_bounded(params.record_count, ops, len, KeyDistribution::Uniform, 52),
                )
                .expect("run");
                let records_per_sec = result.scanned_records as f64 / result.elapsed_secs;
                values.push(format!("{:.1}", records_per_sec / 1000.0));
            }
            let after = SchemeReport::collect(&db).expect("report");
            rows.push(Row::new(label.clone(), values));
            counter_rows.push(Row::new(
                label,
                vec![
                    (after.prefetch_issued - before.prefetch_issued).to_string(),
                    (after.prefetch_useful - before.prefetch_useful).to_string(),
                    (after.prefetch_wasted_blocks - before.prefetch_wasted_blocks).to_string(),
                    (after.coalesced_gets - before.coalesced_gets).to_string(),
                    (after.requests_saved - before.requests_saved).to_string(),
                ],
            ));
            db.close().expect("close");
        }
    }
    let headers: Vec<String> = lengths.iter().map(|l| format!("len={l} krec/s")).collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    emit_table("E10-scan", "scan throughput vs scan length", &header_refs, &rows);
    emit_table(
        "E10-scan-readahead",
        "readahead & coalescing counters over the scan phases",
        &["prefetched", "useful", "wasted", "coalesced GETs", "reqs saved"],
        &counter_rows,
    );
}
