//! Binary wrapper for the E-series experiment in `bench::exp_micro`.

fn main() {
    bench::exp_micro::run(&bench::ExpParams::from_env());
}
