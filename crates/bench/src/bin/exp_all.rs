//! Run the full experiment suite (every reconstructed table and figure).

fn main() {
    let params = bench::ExpParams::from_env();
    println!("RocksMash experiment suite (quick={})", params.quick);
    bench::exp_metadata::run(&params);
    bench::exp_recovery::run(&params);
    bench::exp_micro::run(&params);
    bench::exp_ycsb::run(&params);
    bench::exp_cache_size::run(&params);
    bench::exp_skew::run(&params);
    bench::exp_cost::run(&params);
    bench::exp_compaction::run(&params);
    bench::exp_ablation::run(&params);
    bench::exp_scan::run(&params);
    bench::exp_clients::run(&params);
    bench::exp_compression::run(&params);
    println!("\nall experiments complete");
}
