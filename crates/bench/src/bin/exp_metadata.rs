//! Binary wrapper for the E-series experiment in `bench::exp_metadata`.

fn main() {
    bench::exp_metadata::run(&bench::ExpParams::from_env());
}
