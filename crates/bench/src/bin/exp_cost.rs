//! Binary wrapper for the E-series experiment in `bench::exp_cost`.

fn main() {
    bench::exp_cost::run(&bench::ExpParams::from_env());
}
