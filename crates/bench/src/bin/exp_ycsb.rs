//! Binary wrapper for the E-series experiment in `bench::exp_ycsb`.

fn main() {
    bench::exp_ycsb::run(&bench::ExpParams::from_env());
}
