//! Binary wrapper for the E-series experiment in `bench::exp_scan`.

fn main() {
    bench::exp_scan::run(&bench::ExpParams::from_env());
}
