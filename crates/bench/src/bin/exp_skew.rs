//! Binary wrapper for the E-series experiment in `bench::exp_skew`.

fn main() {
    bench::exp_skew::run(&bench::ExpParams::from_env());
}
