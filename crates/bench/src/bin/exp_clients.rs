//! Binary wrapper for the E-series experiment in `bench::exp_clients`.

fn main() {
    bench::exp_clients::run(&bench::ExpParams::from_env());
}
