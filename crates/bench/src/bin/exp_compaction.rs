//! Binary wrapper for the E-series experiment in `bench::exp_compaction`.

fn main() {
    bench::exp_compaction::run(&bench::ExpParams::from_env());
}
