//! Binary wrapper for the E-series experiment in `bench::exp_cache_size`.

fn main() {
    bench::exp_cache_size::run(&bench::ExpParams::from_env());
}
