//! Binary wrapper for the E-series experiment in `bench::exp_ablation`.

fn main() {
    bench::exp_ablation::run(&bench::ExpParams::from_env());
}
