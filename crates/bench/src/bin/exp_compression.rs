//! Binary wrapper for the E-series experiment in `bench::exp_compression`.

fn main() {
    bench::exp_compression::run(&bench::ExpParams::from_env());
}
