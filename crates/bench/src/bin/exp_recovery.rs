//! Binary wrapper for the E-series experiment in `bench::exp_recovery`.

fn main() {
    bench::exp_recovery::run(&bench::ExpParams::from_env());
}
