//! **E3** — read performance vs persistent cache size.
//!
//! Expected shape: RocksMash's throughput climbs steeply with cache size
//! and saturates once the hot set fits; the naive cache needs noticeably
//! more capacity for the same hit ratio (block-scatter + no admission
//! control), and with no cache at all reads degenerate to cloud latency.

use rocksmash::{Scheme, TieredConfig};
use storage::LocalEnv;
use workloads::microbench::readrandom;
use workloads::{run_ops, KeyDistribution};

use crate::{
    emit_table, kops, load_random, perf_share_columns, us, ExpDir, ExpParams, Row,
    PERF_SAMPLE_EVERY,
};

/// Run E3 and print its figure series.
pub fn run(params: &ExpParams) {
    let sizes: &[u64] = if params.quick {
        &[256 << 10, 1 << 20, 4 << 20]
    } else {
        &[256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20]
    };
    let mut rows = Vec::new();
    for scheme in [Scheme::RocksMash, Scheme::NaiveHybrid] {
        for &cache_bytes in sizes {
            let dir = ExpDir::new("cache-size");
            let env = std::sync::Arc::new(LocalEnv::new(dir.path().clone()).expect("env"));
            let config = TieredConfig {
                cache_bytes,
                perf_sample_every: PERF_SAMPLE_EVERY,
                ..params.base_config()
            };
            let db = scheme.open(env, config).expect("open");
            load_random(&db, params);
            // Warm, then measure. Sampled perf contexts scope the
            // cloud/cache stage shares to the measured pass.
            let dist = KeyDistribution::zipfian_default();
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 5)).expect("warm");
            let perf_before = db.observer().perf_totals();
            let result = run_ops(&db, readrandom(params.record_count, params.op_count, dist, 5))
                .expect("measure");
            let perf_measured = db.observer().perf_totals().delta_since(&perf_before);
            let (cloud_share, cache_share) = perf_share_columns(&perf_measured);
            let report = db.report().expect("report");
            let hit_ratio = report.cache.map(|c| c.hit_ratio()).unwrap_or(0.0);
            let label = format!("{}/{}KiB", scheme.name(), cache_bytes >> 10);
            crate::emit_scheme_report("E3-cache-size", &label, &report, &[]);
            rows.push(Row::new(
                label,
                vec![
                    kops(result.throughput()),
                    us(result.overall_latency().mean_ns()),
                    us(result.overall_latency().percentile_ns(99.0) as f64),
                    format!("{:.3}", hit_ratio),
                    cloud_share,
                    cache_share,
                ],
            ));
            db.close().expect("close");
        }
    }
    emit_table(
        "E3-cache-size",
        "zipfian reads vs persistent cache capacity",
        &["read kops/s", "mean us", "p99 us", "hit ratio", "cloud %", "cache %"],
        &rows,
    );
}
