//! **E12** — block compression ablation on the tiered store.
//!
//! Compressing SSTable blocks shrinks both tiers and — because the
//! persistent cache stores blocks in their on-disk (compressed) form —
//! raises the cache's effective capacity, while every cloud range GET
//! moves fewer billable bytes. The price is CPU per block encode/decode.
//! Expected shape: smaller capacity + egress, comparable or better read
//! throughput once the cache effectively grows.

use rocksmash::{Scheme, TieredConfig};
use storage::LocalEnv;
use workloads::keys::user_key;
use workloads::microbench::readrandom;
use workloads::ycsb::Op;
use workloads::{run_ops, KeyDistribution};

use crate::{emit_table, kops, ExpDir, ExpParams, Row};

/// Dictionary-composed value: natural-language-like redundancy (the YCSB
/// random payloads other experiments use are deliberately incompressible,
/// which is unrepresentative of production values).
fn dictionary_value(i: u64, len: usize) -> Vec<u8> {
    const WORDS: [&str; 12] = [
        "status", "active", "region", "west", "plan", "premium", "quota", "limit", "owner", "team",
        "billing", "cycle",
    ];
    let mut out = Vec::with_capacity(len + 16);
    let mut state = i.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    while out.len() < len {
        state ^= state >> 13;
        state ^= state << 7;
        let word = WORDS[(state % WORDS.len() as u64) as usize];
        out.extend_from_slice(word.as_bytes());
        out.push(b':');
        out.extend_from_slice(word.as_bytes());
        out.push(b';');
    }
    out.truncate(len);
    out
}

/// Run E12 and print its table.
pub fn run(params: &ExpParams) {
    let mut rows = Vec::new();
    for compression in [false, true] {
        let dir = ExpDir::new("compression");
        let env = std::sync::Arc::new(LocalEnv::new(dir.path().clone()).expect("env"));
        let mut config: TieredConfig = Scheme::RocksMash.configure(params.base_config());
        config.options.compression = compression;
        let db = rocksmash::TieredDb::open(env, config).expect("open");

        let load_started = std::time::Instant::now();
        let load_ops = (0..params.record_count)
            .map(|i| Op::Insert(user_key(i), dictionary_value(i, params.value_size)));
        run_ops(&db, load_ops).expect("load");
        db.flush().expect("flush");
        db.wait_for_compactions().expect("settle");
        let load_secs = load_started.elapsed().as_secs_f64();

        db.cloud().cost_tracker().reset();
        let dist = KeyDistribution::zipfian_default();
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 71)).expect("warm");
        let result =
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 72)).expect("run");
        let report = db.report().expect("report");
        let hit = report.cache.map(|c| c.hit_ratio()).unwrap_or(0.0);
        crate::emit_scheme_report(
            "E12-compression",
            if compression { "compressed" } else { "raw" },
            &report,
            &[],
        );
        rows.push(Row::new(
            if compression { "compressed" } else { "raw" },
            vec![
                format!("{:.1}", params.record_count as f64 / load_secs / 1000.0),
                kops(result.throughput()),
                format!("{:.2}", report.local_bytes as f64 / (1 << 20) as f64),
                format!("{:.2}", report.cloud_bytes as f64 / (1 << 20) as f64),
                format!("{:.2}", report.cost.egress_bytes as f64 / (1 << 20) as f64),
                format!("{:.3}", hit),
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E12-compression",
        "block compression ablation (RocksMash scheme)",
        &["load kops/s", "read kops/s", "local MiB", "cloud MiB", "egress MiB", "cache hit"],
        &rows,
    );
}
