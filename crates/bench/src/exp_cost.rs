//! **E7** — storage cost-effectiveness table.
//!
//! After identical load + mixed read phases, reports where the bytes sit,
//! what the month costs (capacity + requests + egress at S3-like list
//! prices), and throughput per dollar. Expected shape: LocalOnly buys the
//! most throughput at the highest capacity price; CloudOnly is cheapest
//! and slowest; RocksMash approaches LocalOnly throughput at close to
//! CloudOnly capacity cost — the cost-effectiveness argument of the paper.

use rocksmash::Scheme;
use workloads::microbench::readrandom;
use workloads::{run_ops, KeyDistribution};

use crate::{emit_table, kops, load_random, open_scheme, ExpParams, Row};

/// Run E7 and print its table.
pub fn run(params: &ExpParams) {
    let mut rows = Vec::new();
    for scheme in Scheme::all() {
        let (_dir, db) = open_scheme(scheme, params);
        load_random(&db, params);
        db.cloud().cost_tracker().reset();
        let dist = KeyDistribution::zipfian_default();
        run_ops(&db, readrandom(params.record_count, params.op_count, dist, 21)).expect("warm");
        let result =
            run_ops(&db, readrandom(params.record_count, params.op_count, dist, 22)).expect("run");
        let report = db.report().expect("report");
        crate::emit_scheme_report("E7-cost", scheme.name(), &report, &[]);
        // The two independent cost dimensions of the paper's argument,
        // normalized so they are scale-free:
        //  * capacity price per GiB-month, blending the tiers by where the
        //    scheme's bytes actually sit;
        //  * request+egress dollars per million operations served.
        let data_bytes = (report.local_bytes + report.cloud_bytes).max(1);
        let capacity_per_gib = (report.cost.cloud_capacity_cost + report.cost.local_capacity_cost)
            / (data_bytes as f64 / (1u64 << 30) as f64);
        let request_cost = report.cost.request_cost + report.cost.egress_cost;
        // Both warm + measured phases issued cloud requests; bill per op.
        let billed_ops = 2 * params.op_count;
        let request_per_mops = request_cost / billed_ops as f64 * 1e6;
        // Amplification multiplies the dollar columns: every extra write
        // byte is a PUT, every extra sorted run a GET probe.
        let (w_amp, space_amp) =
            report.levels.as_ref().map(|l| (l.write_amp(), l.space_amp())).unwrap_or((0.0, 0.0));
        rows.push(Row::new(
            scheme.name(),
            vec![
                format!("{:.1}", report.local_bytes as f64 / (1 << 20) as f64),
                format!("{:.1}", report.cloud_bytes as f64 / (1 << 20) as f64),
                format!("{:.2}", report.local_fraction() * 100.0),
                format!("{:.2}", w_amp),
                format!("{:.2}", space_amp),
                format!("{:.4}", capacity_per_gib),
                format!("{:.3}", request_per_mops),
                kops(result.throughput()),
            ],
        ));
        db.close().expect("close");
    }
    emit_table(
        "E7-cost",
        "storage cost dimensions and read performance by scheme",
        &[
            "local MiB",
            "cloud MiB",
            "local %",
            "w-amp",
            "space-amp",
            "capacity $/GiB-mo",
            "req $/Mops",
            "read kops/s",
        ],
        &rows,
    );
}
