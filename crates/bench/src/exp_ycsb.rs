//! **E2** — YCSB A–F throughput across schemes (the paper's macrobenchmark
//! figure).
//!
//! Expected shape: RocksMash tracks LocalOnly closely on skewed
//! read-dominated mixes (B, C, D — the cache absorbs the hot set), leads
//! NaiveHybrid everywhere, and CloudOnly trails by a wide margin on every
//! mix with reads. Scan-heavy E is the hardest mix for every cloud-backed
//! scheme.

use rocksmash::Scheme;
use workloads::{run_ops, WorkloadSpec};

use crate::{emit_table, kops, open_scheme, ExpParams, Row};

/// Run E2 and print its figure series.
pub fn run(params: &ExpParams) {
    let suite = WorkloadSpec::core_suite(params.record_count, params.value_size);
    let mut rows = Vec::new();
    for scheme in Scheme::all() {
        let mut values = Vec::new();
        for spec in &suite {
            let (_dir, db) = open_scheme(scheme, params);
            run_ops(&db, spec.load_ops()).expect("load");
            db.flush().expect("flush");
            db.wait_for_compactions().expect("settle");
            // Warm pass (half the ops) so caches reach steady state, then
            // the measured pass.
            run_ops(&db, spec.run_ops(params.op_count / 2, 3)).expect("warmup");
            let ops = if spec.name == "ycsb-e" { params.op_count / 4 } else { params.op_count };
            let result = run_ops(&db, spec.run_ops(ops, 4)).expect("run");
            values.push(kops(result.throughput()));
            db.close().expect("close");
        }
        rows.push(Row::new(scheme.name(), values));
    }
    emit_table(
        "E2-ycsb",
        "YCSB core workload throughput (kops/s)",
        &["A", "B", "C", "D", "E", "F"],
        &rows,
    );
}
