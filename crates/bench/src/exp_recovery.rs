//! **E6** — recovery time vs WAL volume: eWAL parallel replay against
//! conventional serial replay.
//!
//! The eWAL's sequence-stamped records let each partition be rebuilt into
//! its own memtable concurrently (read + CRC + decode + skiplist build),
//! with only the L0 ingest serialized. Log reads are charged an NVMe-like
//! device latency so the I/O component parallelizes the way it does on
//! real storage. Expected shape: recovery time grows with log volume and
//! drops with partitions, approaching the serial-ingest floor (Amdahl).

use std::sync::Arc;
use std::time::Instant;

use lsm::{Db, Options, WriteBatch};
use rocksmash::ewal::EWalWriter;
use rocksmash::recovery;
use storage::{Env, LatencyModel, LocalEnv};
use workloads::keys::{user_key, value_for};

use crate::{emit_table, ExpDir, ExpParams, Row};

fn build_ewal(env: &Arc<dyn Env>, partitions: usize, target_bytes: u64, value_size: usize) -> u64 {
    let writer = EWalWriter::create(env, 1, partitions).expect("create ewal");
    let mut seq = 1u64;
    let mut i = 0u64;
    while writer.bytes() < target_bytes {
        let mut batch = WriteBatch::new();
        for _ in 0..8 {
            batch.put(&user_key(i % 100_000), &value_for(i, seq, value_size));
            i += 1;
        }
        batch.set_sequence(seq);
        seq += batch.count() as u64;
        writer.append(&batch).expect("append");
    }
    let bytes = writer.bytes();
    writer.finish().expect("finish");
    bytes
}

/// Engine options that isolate replay cost: no engine WAL, no background
/// compaction racing the measurement.
fn recovery_db_options(params: &ExpParams) -> Options {
    Options {
        wal_enabled: false,
        auto_compaction: false,
        write_buffer_size: usize::MAX,
        ..params.engine_options()
    }
}

fn timed_recovery(
    params: &ExpParams,
    ewal_env: &Arc<dyn Env>,
    parallel: bool,
) -> (recovery::RecoveryReport, f64) {
    let db_dir = ExpDir::new("recovery-db");
    let db_env: Arc<dyn Env> = Arc::new(LocalEnv::new(db_dir.path().clone()).expect("env"));
    let db = Db::open(db_env, recovery_db_options(params)).expect("db");
    let t0 = Instant::now();
    let report = recovery::recover_into(ewal_env, &db, parallel).expect("recover");
    let total = t0.elapsed().as_secs_f64();
    db.close().expect("close");
    (report, total)
}

/// Run E6 and print its figure series.
pub fn run(params: &ExpParams) {
    let volumes: &[u64] =
        if params.quick { &[4 << 20, 16 << 20] } else { &[16 << 20, 64 << 20, 128 << 20] };
    let partition_counts: &[usize] = &[1, 2, 4, 8];
    let mut rows = Vec::new();
    for &volume in volumes {
        for &partitions in partition_counts {
            let dir = ExpDir::new("recovery");
            // Charge an EBS/SATA-class latency on log reads so the I/O
            // component behaves like a real log device: parallel partition
            // readers overlap their waits. (CPU-side decode additionally
            // parallelizes with physical cores; this harness may run on a
            // single-core container, where the I/O overlap is the signal.)
            let log_device =
                LatencyModel { base_us: 100, bandwidth_mib_s: 150.0, jitter_frac: 0.02 };
            let env: Arc<dyn Env> =
                Arc::new(LocalEnv::new(dir.path().clone()).expect("env").with_latency(log_device));
            let bytes = build_ewal(&env, partitions, volume, params.value_size);

            let (serial, serial_total) = timed_recovery(params, &env, false);
            let (parallel, parallel_total) = timed_recovery(params, &env, true);
            assert_eq!(serial.ops(), parallel.ops());

            rows.push(Row::new(
                format!("{}MiB/p{partitions}", volume >> 20),
                vec![
                    format!("{}", bytes >> 20),
                    format!("{}", serial.ops() / 1000),
                    format!("{:.0}", serial.decode_time.as_secs_f64() * 1000.0),
                    format!("{:.0}", parallel.decode_time.as_secs_f64() * 1000.0),
                    format!("{:.0}", serial_total * 1000.0),
                    format!("{:.0}", parallel_total * 1000.0),
                    format!("{:.2}x", serial_total / parallel_total.max(1e-9)),
                ],
            ));
        }
    }
    emit_table(
        "E6-recovery",
        "eWAL recovery: serial vs parallel rebuild",
        &[
            "log MiB",
            "kops",
            "serial rebuild ms",
            "par rebuild ms",
            "serial total ms",
            "par total ms",
            "speedup",
        ],
        &rows,
    );
}
