//! **E5** — persistent-cache metadata space overhead (table).
//!
//! Feeds the identical block population into the RocksMash cache (packed
//! 8-byte index entries, extent bookkeeping) and the conventional cache
//! (string-keyed hash map + LRU links) and reports DRAM per cached block
//! and per cached GiB. Expected shape: roughly an order of magnitude gap,
//! widening as blocks shrink.

use std::sync::Arc;

use mashcache::cache::{CacheConfig, PersistentBlockCache, SLOT_HEADER};
use mashcache::{BaselineCache, MashCache, MemCacheStorage};

use crate::{emit_table, ExpParams, Row};

/// Run E5 and print its table.
pub fn run(params: &ExpParams) {
    let block_sizes: &[usize] = if params.quick { &[4096] } else { &[1024, 4096, 16 * 1024] };
    let mut rows = Vec::new();
    for &block_size in block_sizes {
        let blocks: u64 = if params.quick { 5_000 } else { 20_000 };
        let capacity = (block_size + SLOT_HEADER) as u64 * (blocks + 16);
        let slot_size = (block_size + SLOT_HEADER) as u32;

        let mash = MashCache::new(
            Arc::new(MemCacheStorage::new(capacity as usize)),
            CacheConfig {
                slot_size,
                slots_per_extent: 64,
                admission: false,
                ..CacheConfig::default()
            },
        );
        let baseline =
            BaselineCache::new(Arc::new(MemCacheStorage::new(capacity as usize)), slot_size);

        let payload = vec![0xabu8; block_size];
        // Blocks spread over many files, as a real LSM produces them.
        let blocks_per_file = 256u64;
        for i in 0..blocks {
            let file = i / blocks_per_file;
            let offset = (i % blocks_per_file) * block_size as u64;
            mash.put(file, offset, &payload, 3);
            baseline.put(file, offset, &payload, 3);
        }
        assert_eq!(mash.stats().inserts, blocks);
        assert_eq!(baseline.stats().inserts, blocks);

        let mash_per_block = mash.metadata_bytes() as f64 / blocks as f64;
        let base_per_block = baseline.metadata_bytes() as f64 / blocks as f64;
        let per_gib =
            |per_block: f64| per_block * (1 << 30) as f64 / block_size as f64 / (1 << 20) as f64;
        rows.push(Row::new(
            format!("block={block_size}B"),
            vec![
                format!("{mash_per_block:.1}"),
                format!("{base_per_block:.1}"),
                format!("{:.1}", per_gib(mash_per_block)),
                format!("{:.1}", per_gib(base_per_block)),
                format!("{:.1}x", base_per_block / mash_per_block),
            ],
        ));
    }
    emit_table(
        "E5-metadata",
        "cache metadata DRAM overhead (RocksMash vs conventional)",
        &["mash B/block", "conv B/block", "mash MiB/GiB", "conv MiB/GiB", "savings"],
        &rows,
    );
    index_memory_table(params);
}

/// Companion table: DRAM pinned per open table by its index + filter,
/// monolithic (granularity 0) vs two-level partitioned index at a sweep of
/// granularities. The partitioned format pins only the top-level index and
/// filter index; per-partition index/filter blocks load on demand through
/// the block cache, so open-table memory is O(touched partitions), not
/// O(total blocks).
fn index_memory_table(params: &ExpParams) {
    use lsm::sstable::builder::TableBuilder;
    use lsm::sstable::reader::Table;
    use lsm::types::{make_internal_key, ValueType};
    use storage::{Env, MemEnv};

    let keys: usize = if params.quick { 10_000 } else { 50_000 };
    let granularities: &[usize] = &[0, 4, 16, 64];
    let mut rows = Vec::new();
    let mut monolithic_pinned = 0usize;
    for &granularity in granularities {
        let opts = lsm::Options {
            block_size: 4096,
            partitioned_index_granularity: granularity,
            ..lsm::Options::default()
        };
        let env = MemEnv::new();
        let mut b = TableBuilder::new(env.new_writable("t").expect("writable"), opts.clone());
        for i in 0..keys {
            let k = make_internal_key(
                format!("user{i:012}").as_bytes(),
                i as u64 + 1,
                ValueType::Value,
            );
            b.add(&k, &[0xabu8; 100]).expect("add");
        }
        b.finish().expect("finish");
        let table = Table::open(env.open_random("t").expect("open"), 1, opts, None).expect("table");
        let pinned = table.metadata_pinned_bytes();
        if granularity == 0 {
            monolithic_pinned = pinned;
        }
        let label = if granularity == 0 {
            "monolithic".to_string()
        } else {
            format!("partitioned g={granularity}")
        };
        rows.push(Row::new(
            label,
            vec![
                pinned.to_string(),
                format!("{:.2}", pinned as f64 / keys as f64),
                format!("{:.1}x", monolithic_pinned as f64 / pinned.max(1) as f64),
            ],
        ));
    }
    emit_table(
        "E5-index-memory",
        "open-table pinned index+filter DRAM (monolithic vs partitioned index)",
        &["pinned bytes", "B/key", "reduction"],
        &rows,
    );
}
