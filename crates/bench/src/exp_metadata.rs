//! **E5** — persistent-cache metadata space overhead (table).
//!
//! Feeds the identical block population into the RocksMash cache (packed
//! 8-byte index entries, extent bookkeeping) and the conventional cache
//! (string-keyed hash map + LRU links) and reports DRAM per cached block
//! and per cached GiB. Expected shape: roughly an order of magnitude gap,
//! widening as blocks shrink.

use std::sync::Arc;

use mashcache::cache::{CacheConfig, PersistentBlockCache, SLOT_HEADER};
use mashcache::{BaselineCache, MashCache, MemCacheStorage};

use crate::{emit_table, ExpParams, Row};

/// Run E5 and print its table.
pub fn run(params: &ExpParams) {
    let block_sizes: &[usize] = if params.quick { &[4096] } else { &[1024, 4096, 16 * 1024] };
    let mut rows = Vec::new();
    for &block_size in block_sizes {
        let blocks: u64 = if params.quick { 5_000 } else { 20_000 };
        let capacity = (block_size + SLOT_HEADER) as u64 * (blocks + 16);
        let slot_size = (block_size + SLOT_HEADER) as u32;

        let mash = MashCache::new(
            Arc::new(MemCacheStorage::new(capacity as usize)),
            CacheConfig {
                slot_size,
                slots_per_extent: 64,
                admission: false,
                ..CacheConfig::default()
            },
        );
        let baseline =
            BaselineCache::new(Arc::new(MemCacheStorage::new(capacity as usize)), slot_size);

        let payload = vec![0xabu8; block_size];
        // Blocks spread over many files, as a real LSM produces them.
        let blocks_per_file = 256u64;
        for i in 0..blocks {
            let file = i / blocks_per_file;
            let offset = (i % blocks_per_file) * block_size as u64;
            mash.put(file, offset, &payload, 3);
            baseline.put(file, offset, &payload, 3);
        }
        assert_eq!(mash.stats().inserts, blocks);
        assert_eq!(baseline.stats().inserts, blocks);

        let mash_per_block = mash.metadata_bytes() as f64 / blocks as f64;
        let base_per_block = baseline.metadata_bytes() as f64 / blocks as f64;
        let per_gib =
            |per_block: f64| per_block * (1 << 30) as f64 / block_size as f64 / (1 << 20) as f64;
        rows.push(Row::new(
            format!("block={block_size}B"),
            vec![
                format!("{mash_per_block:.1}"),
                format!("{base_per_block:.1}"),
                format!("{:.1}", per_gib(mash_per_block)),
                format!("{:.1}", per_gib(base_per_block)),
                format!("{:.1}x", base_per_block / mash_per_block),
            ],
        ));
    }
    emit_table(
        "E5-metadata",
        "cache metadata DRAM overhead (RocksMash vs conventional)",
        &["mash B/block", "conv B/block", "mash MiB/GiB", "conv MiB/GiB", "savings"],
        &rows,
    );
}
